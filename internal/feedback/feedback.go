// Package feedback implements the OCE feedback loop the paper deploys with
// RCACopilot (§5.5): every prediction is presented to on-call engineers for
// review, incident notification emails carry a feedback mechanism, and
// confirmed labels flow back into the incident history so the system
// "adapt[s] to new and evolving types of incidents, learning from previous
// data to improve future predictions" (§1).
//
// The loop closes three ways:
//
//   - Confirm: the OCE agrees with the predicted category; the incident is
//     learned into the vector store under that label.
//   - Correct: the OCE assigns a different (possibly brand-new) category;
//     the incident is learned under the corrected label — this is how a
//     coined keyword like "I/O Bottleneck" becomes the canonical "DiskFull"
//     after post-investigation (§5.3).
//   - Reject: the prediction is recorded as wrong without a replacement
//     label (e.g. investigation still open); nothing is learned yet.
//
// The store keeps per-category accuracy so teams can watch prediction
// quality per root cause, mirroring the satisfaction tracking the paper
// reports from its deployment.
//
// # Asynchronous learning
//
// Learning an incident re-summarizes and embeds it — LLM work that by
// default runs inline in Submit, on the OCE's hot path. StartIngest moves
// it onto a background worker behind a bounded queue: Submit records the
// verdict and returns immediately, the worker drains the queue, and a full
// queue degrades gracefully by learning inline (backpressure, never
// unbounded memory). The worker draws its slot from the shared
// internal/parallel budget so feedback ingest and batch evaluation share
// one process-wide concurrency bound. Flush is the read-your-writes
// barrier: it blocks until everything submitted so far is learned (and
// surfaces any async learn errors), so a submitting OCE who wants their
// confirmation reflected in the next retrieval calls Flush first.
//
// # Async error surfacing
//
// A background learn that fails must reach the OCE who submitted the
// verdict — not just whoever happens to Flush next. Every failed async
// learn is therefore recorded on the loop as a Failure (incident,
// reviewer, error, time), queryable via Failures/FailureFor without any
// Flush, and pushed through the optional SetNotifier hook the moment it
// happens — the notification path a deployment wires to the same email
// mechanism the incident reports use (report.RenderLearnFailure renders
// the message body). Flush still aggregates and clears the pending error
// list for read-your-writes callers; the Failure record persists until
// the same incident later learns successfully.
//
// # Learn-failure retry queue
//
// Recording and notifying a failure still leaves the learn undone until
// the OCE resubmits. StartRetry closes that gap: every recorded Failure
// keeps its learn task and is redriven automatically with exponential
// backoff (doubling from a base delay up to a cap, plus deterministic
// per-incident jitter so an outage's failures don't redrive in lockstep),
// so a transient embedder outage self-heals once the dependency
// recovers. A successful redrive clears the Failure exactly as a
// resubmitted verdict would; after a bounded number of attempts the
// failure stops consuming learner calls and stands until manually
// resubmitted. The schedule runs off the loop's injectable clock
// (SetClock), with RedriveDue as the explicit pump for tests and
// simulations.
package feedback

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/incident"
	"repro/internal/kvstore"
	"repro/internal/parallel"
)

// Verdict is the OCE's judgement on one prediction.
type Verdict string

// Verdicts.
const (
	VerdictConfirm Verdict = "confirm"
	VerdictCorrect Verdict = "correct"
	VerdictReject  Verdict = "reject"
)

// Entry is one recorded piece of feedback.
type Entry struct {
	IncidentID string            `json:"incidentId"`
	Predicted  incident.Category `json:"predicted"`
	Verdict    Verdict           `json:"verdict"`
	// Corrected is the OCE-assigned label for VerdictCorrect.
	Corrected incident.Category `json:"corrected,omitempty"`
	Reviewer  string            `json:"reviewer"`
	At        time.Time         `json:"at"`
	Note      string            `json:"note,omitempty"`
}

// Learner is the slice of the pipeline the loop feeds back into —
// *core.Copilot satisfies it.
type Learner interface {
	Learn(inc *incident.Incident) error
}

// Failure records one failed background learn: enough for a notification
// to reach the OCE who submitted the verdict without anyone calling
// Flush.
type Failure struct {
	// IncidentID identifies the incident whose learn failed.
	IncidentID string
	// Reviewer is the OCE who submitted the verdict that queued the learn.
	Reviewer string
	// Err is the learn error.
	Err error
	// At is when the failure was recorded.
	At time.Time
}

// learnTask is one queued background learn, carrying the submitting
// reviewer so a failure can be attributed back to them.
type learnTask struct {
	inc      *incident.Incident
	reviewer string
}

// Loop records feedback and feeds confirmed/corrected incidents back into
// the learner. Safe for concurrent use.
type Loop struct {
	mu      sync.Mutex
	store   *kvstore.Store
	learner Learner

	// clockMu guards clock: the ingest worker timestamps failures off the
	// Submit goroutine, so SetClock must not race a background read.
	clockMu sync.Mutex
	clock   func() time.Time

	// ingest guards the async-learning state; nil queue = synchronous.
	ingest struct {
		mu      sync.Mutex
		cond    *sync.Cond
		queue   chan learnTask
		done    chan struct{}
		closed  bool
		pending int
		errs    []error
		granted int
		// failures holds the latest unresolved Failure per incident; a
		// later successful learn for the incident clears it.
		failures map[string]Failure
		notify   func(Failure)
		// retry holds the redrive schedule per failed incident (nil map =
		// retrying off); guarded by the same mutex as failures.
		retry     map[string]*retryState
		retryCfg  RetryConfig
		retryOn   bool
		retryStop chan struct{}
		retryDone chan struct{}
		// journal, when set, receives every retry-schedule transition for
		// durable logging (SetRetryJournal); invoked outside ig.mu.
		journal func(RetryTransition)
	}
}

// retryState schedules one failed learn's redrives.
type retryState struct {
	task learnTask
	// attempts counts learn attempts made so far (the original failed
	// learn is attempt 1).
	attempts int
	// next is when the next redrive is due, per the loop's clock; zero
	// while retrying is off (scheduled lazily by StartRetry).
	next time.Time
	// inflight marks a redrive in progress, so overlapping RedriveDue
	// calls never double-learn one incident.
	inflight bool
	// exhausted marks a failure whose MaxAttempts ran out: the record is
	// kept (so dashboards still see the attempt count) but never
	// rescheduled, not even by a fresh StartRetry.
	exhausted bool
}

// RetryConfig parameterizes the learn-failure retry queue (StartRetry).
type RetryConfig struct {
	// Base is the delay before the first redrive; subsequent redrives
	// double it. Default 30 s.
	Base time.Duration
	// Cap bounds the exponential backoff. Default 10 min.
	Cap time.Duration
	// MaxAttempts bounds total learn attempts per failure (the original
	// failed learn counts as the first); once exhausted, the Failure
	// record stands until the OCE resubmits. Default 8; negative means
	// unlimited.
	MaxAttempts int
	// Poll is how often the background worker checks for due redrives.
	// Default Base/2. Tests that drive a fake clock skip the worker and
	// call RedriveDue directly instead.
	Poll time.Duration
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Base <= 0 {
		c.Base = 30 * time.Second
	}
	if c.Cap <= 0 {
		c.Cap = 10 * time.Minute
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	if c.Poll <= 0 {
		c.Poll = c.Base / 2
	}
	return c
}

// backoffDelay returns the delay before attempt n+1 given n attempts so
// far: Base doubled per extra attempt, capped, plus up to 25% of
// deterministic jitter derived from (incident, attempt) — so a burst of
// failures from one embedder outage doesn't redrive in lockstep, and
// tests get reproducible schedules.
func (c RetryConfig) backoffDelay(incidentID string, attempts int) time.Duration {
	d := c.Base
	for i := 1; i < attempts && d < c.Cap; i++ {
		d *= 2
	}
	if d > c.Cap {
		d = c.Cap
	}
	h := fnv.New32a()
	fmt.Fprintf(h, "%s/%d", incidentID, attempts)
	jitter := time.Duration(uint64(d) / 4 * uint64(h.Sum32()%1000) / 1000)
	return d + jitter
}

// New returns a Loop persisting entries to the given store (a fresh
// in-memory store when nil) and feeding the learner (which may be nil for
// record-only use).
func New(store *kvstore.Store, learner Learner) *Loop {
	if store == nil {
		store = kvstore.New()
	}
	return &Loop{store: store, learner: learner, clock: time.Now}
}

// SetClock overrides the timestamp source (tests, simulations). The
// clock function itself must be safe for concurrent calls when ingest is
// running.
func (l *Loop) SetClock(now func() time.Time) {
	l.clockMu.Lock()
	l.clock = now
	l.clockMu.Unlock()
}

// now reads the clock under its own lock, callable from any goroutine.
func (l *Loop) now() time.Time {
	l.clockMu.Lock()
	clock := l.clock
	l.clockMu.Unlock()
	return clock()
}

func entryKey(incidentID string) string { return "feedback/" + incidentID }

// Submit records a verdict for a predicted incident and, for confirm and
// correct verdicts, learns the incident under its final label. The
// incident must carry a prediction.
func (l *Loop) Submit(inc *incident.Incident, verdict Verdict, corrected incident.Category, reviewer, note string) (*Entry, error) {
	if inc == nil || inc.ID == "" {
		return nil, fmt.Errorf("feedback: incident required")
	}
	if inc.Predicted == "" {
		return nil, fmt.Errorf("feedback: incident %s has no prediction to review", inc.ID)
	}
	var final incident.Category
	switch verdict {
	case VerdictConfirm:
		final = inc.Predicted
	case VerdictCorrect:
		if corrected == "" {
			return nil, fmt.Errorf("feedback: correct verdict for %s needs a corrected category", inc.ID)
		}
		final = corrected
	case VerdictReject:
		if corrected != "" {
			return nil, fmt.Errorf("feedback: reject verdict for %s must not carry a corrected category", inc.ID)
		}
	default:
		return nil, fmt.Errorf("feedback: unknown verdict %q", verdict)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	e := &Entry{
		IncidentID: inc.ID,
		Predicted:  inc.Predicted,
		Verdict:    verdict,
		Corrected:  corrected,
		Reviewer:   reviewer,
		At:         l.now(),
		Note:       note,
	}
	data, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("feedback: encode: %w", err)
	}
	l.store.Put(entryKey(inc.ID), data)

	if final != "" && l.learner != nil {
		learned := inc.Clone()
		learned.Category = final
		if err := l.learnOrEnqueue(learnTask{inc: learned, reviewer: reviewer}); err != nil {
			return nil, fmt.Errorf("feedback: learn %s: %w", inc.ID, err)
		}
	}
	return e, nil
}

// learnOrEnqueue hands a labelled incident to the background ingest worker
// when one is running, falling back to an inline learn when the queue is
// full (backpressure) or ingest is off/closed (the synchronous default).
// Inline learns report their error straight back to the submitter; only
// deferred ones need the Failure record.
func (l *Loop) learnOrEnqueue(task learnTask) error {
	ig := &l.ingest
	ig.mu.Lock()
	if ig.queue == nil || ig.closed {
		ig.mu.Unlock()
		return l.learnAndRecord(task, false)
	}
	ig.pending++
	select {
	case ig.queue <- task:
		ig.mu.Unlock()
		return nil
	default:
		// Queue full: the submitter pays for this one inline, which is
		// exactly the pre-async behaviour — bounded memory, no lost learns.
		ig.pending--
		ig.mu.Unlock()
		return l.learnAndRecord(task, false)
	}
}

// learnAndRecord runs one learn and maintains the per-incident Failure
// record: an error is stored (and, for deferred learns, pushed through
// the notifier — inline failures already reach the submitter as a return
// value); success clears any stale failure for the incident. Every
// recorded failure also keeps its learn task, so the retry queue
// (StartRetry) can redrive it without the OCE resubmitting.
func (l *Loop) learnAndRecord(task learnTask, deferred bool) error {
	err := l.learner.Learn(task.inc)
	ig := &l.ingest
	ig.mu.Lock()
	if err != nil {
		f := Failure{IncidentID: task.inc.ID, Reviewer: task.reviewer, Err: err, At: l.now()}
		if ig.failures == nil {
			ig.failures = make(map[string]Failure)
		}
		ig.failures[task.inc.ID] = f
		if ig.retry == nil {
			ig.retry = make(map[string]*retryState)
		}
		st := &retryState{task: task, attempts: 1}
		if ig.retryOn {
			st.next = f.At.Add(ig.retryCfg.backoffDelay(task.inc.ID, st.attempts))
		}
		ig.retry[task.inc.ID] = st
		notify := ig.notify
		journal := l.journalCapture(failedTransition(f, st))
		ig.mu.Unlock()
		journal()
		if deferred && notify != nil {
			notify(f)
		}
		return err
	}
	// Only a learn that resolves a recorded failure is a schedule
	// transition worth journaling; the common clean-success path is not.
	_, hadFailure := ig.failures[task.inc.ID]
	delete(ig.failures, task.inc.ID)
	delete(ig.retry, task.inc.ID)
	var journal func()
	if hadFailure {
		journal = l.journalCapture(clearedTransition(task.inc.ID, task.reviewer, l.now()))
	}
	ig.mu.Unlock()
	if journal != nil {
		journal()
	}
	return nil
}

// StartIngest starts the background learn worker with the given queue
// capacity (default 64 when <= 0). It fails if the loop has no learner or
// ingest is already running; after a Close it starts a fresh worker. The
// worker holds at most one slot of the shared internal/parallel budget,
// released on Close.
func (l *Loop) StartIngest(queueSize int) error {
	if l.learner == nil {
		return fmt.Errorf("feedback: StartIngest on a record-only loop (no learner)")
	}
	if queueSize <= 0 {
		queueSize = 64
	}
	ig := &l.ingest
	ig.mu.Lock()
	defer ig.mu.Unlock()
	if ig.queue != nil && !ig.closed {
		return fmt.Errorf("feedback: ingest already started")
	}
	ig.cond = sync.NewCond(&ig.mu)
	ig.queue = make(chan learnTask, queueSize)
	ig.done = make(chan struct{})
	ig.closed = false
	ig.granted = parallel.Reserve(1)
	go l.ingestWorker(ig.queue, ig.done)
	return nil
}

// ingestWorker drains queued learns until the queue closes. Failures are
// recorded per incident and pushed through the notifier immediately (see
// learnAndRecord) in addition to feeding the Flush error aggregate.
func (l *Loop) ingestWorker(queue <-chan learnTask, done chan<- struct{}) {
	defer close(done)
	ig := &l.ingest
	for task := range queue {
		err := l.learnAndRecord(task, true)
		ig.mu.Lock()
		ig.pending--
		if err != nil {
			ig.errs = append(ig.errs, fmt.Errorf("feedback: learn %s: %w", task.inc.ID, err))
		}
		ig.cond.Broadcast()
		ig.mu.Unlock()
	}
}

// SetNotifier installs the delivery hook for failed background learns:
// it is invoked once per deferred failure, as the failure happens, from
// the ingest worker (keep it fast or hand off). This is how a deployment
// routes the failure back to the submitting OCE — typically by sending
// report.RenderLearnFailure's text through the same channel that carries
// incident notifications. A nil notifier (the default) leaves failures
// queryable via Failures/FailureFor only.
func (l *Loop) SetNotifier(fn func(Failure)) {
	ig := &l.ingest
	ig.mu.Lock()
	ig.notify = fn
	ig.mu.Unlock()
}

// Failures returns every unresolved learn failure, ordered by incident
// ID. Unlike Flush's error aggregate this does not clear: a failure
// stands until the same incident learns successfully (e.g. after the OCE
// resubmits the verdict).
func (l *Loop) Failures() []Failure {
	ig := &l.ingest
	ig.mu.Lock()
	out := make([]Failure, 0, len(ig.failures))
	for _, f := range ig.failures {
		out = append(out, f)
	}
	ig.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].IncidentID < out[j].IncidentID })
	return out
}

// FailureFor returns the unresolved learn failure for an incident, if
// any — the per-incident view an incident report embeds.
func (l *Loop) FailureFor(incidentID string) (Failure, bool) {
	ig := &l.ingest
	ig.mu.Lock()
	defer ig.mu.Unlock()
	f, ok := ig.failures[incidentID]
	return f, ok
}

// StartRetry starts the learn-failure retry queue: recorded Failures —
// including those recorded before the call — are redriven automatically
// with exponential backoff (doubling from cfg.Base up to cfg.Cap, plus
// deterministic per-incident jitter), so a transient embedder outage
// self-heals without every OCE resubmitting their verdict. A successful
// redrive clears the Failure exactly as a resubmitted learn would; after
// cfg.MaxAttempts total attempts the failure stops redriving and stands
// until the OCE resubmits. A background worker polls the schedule every
// cfg.Poll; deployments driving a simulated clock (SetClock) can skip the
// worker's cadence and call RedriveDue directly. Stopped by Close.
func (l *Loop) StartRetry(cfg RetryConfig) error {
	if l.learner == nil {
		return fmt.Errorf("feedback: StartRetry on a record-only loop (no learner)")
	}
	cfg = cfg.withDefaults()
	ig := &l.ingest
	ig.mu.Lock()
	if ig.retryOn {
		ig.mu.Unlock()
		return fmt.Errorf("feedback: retry already started")
	}
	ig.retryCfg = cfg
	ig.retryOn = true
	// Failures recorded before retry was on have no schedule yet: their
	// first redrive is due one backoff from now. Journal the assigned due
	// times so they survive a crash before the next transition.
	now := l.now()
	var journals []func()
	for id, st := range ig.retry {
		if st.next.IsZero() && !st.exhausted {
			st.next = now.Add(cfg.backoffDelay(id, st.attempts))
			if f, ok := ig.failures[id]; ok && st.task.inc != nil {
				journals = append(journals, l.journalCapture(failedTransition(f, st)))
			}
		}
	}
	ig.retryStop = make(chan struct{})
	ig.retryDone = make(chan struct{})
	stop, done := ig.retryStop, ig.retryDone
	ig.mu.Unlock()
	for _, j := range journals {
		j()
	}
	go l.retryWorker(cfg.Poll, stop, done)
	return nil
}

// retryWorker polls the redrive schedule until Close.
func (l *Loop) retryWorker(poll time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			l.RedriveDue()
		}
	}
}

// RedriveDue redrives every recorded failure whose backoff has elapsed
// per the loop's clock and returns how many learns were attempted. On
// another failure the attempt count and Failure record update and the
// next redrive backs off further (no notification — the OCE was told
// when the failure was recorded); on success the failure clears exactly
// as a resubmitted learn would. The background StartRetry worker calls
// this on its poll cadence; tests drive it directly against SetClock.
func (l *Loop) RedriveDue() int {
	ig := &l.ingest
	now := l.now()
	ig.mu.Lock()
	if !ig.retryOn {
		ig.mu.Unlock()
		return 0
	}
	cfg := ig.retryCfg
	var due []*retryState
	for _, st := range ig.retry {
		if !st.inflight && !st.next.IsZero() && !st.next.After(now) {
			st.inflight = true
			due = append(due, st)
		}
	}
	ig.mu.Unlock()
	// Deterministic redrive order for tests and logs.
	sort.Slice(due, func(i, j int) bool { return due[i].task.inc.ID < due[j].task.inc.ID })

	for _, st := range due {
		err := l.learner.Learn(st.task.inc)
		id := st.task.inc.ID
		ig.mu.Lock()
		st.inflight = false
		if cur, ok := ig.retry[id]; !ok || cur != st {
			// While this redrive ran, a concurrent Submit for the same
			// incident recorded a newer verdict's outcome (replacing the
			// schedule) or learned successfully (clearing it). The newer
			// state owns the incident's failure record and backoff — this
			// redrive's stale result must not clobber or clear it.
			ig.mu.Unlock()
			continue
		}
		if err == nil {
			delete(ig.failures, id)
			delete(ig.retry, id)
			journal := l.journalCapture(clearedTransition(id, st.task.reviewer, l.now()))
			ig.mu.Unlock()
			journal()
			continue
		}
		st.attempts++
		f := Failure{IncidentID: id, Reviewer: st.task.reviewer, Err: err, At: l.now()}
		ig.failures[id] = f
		if cfg.MaxAttempts >= 0 && st.attempts >= cfg.MaxAttempts {
			// Exhausted: the Failure record stands, but the queue stops
			// spending learner calls on it. The schedule entry is kept —
			// unschedulable — so RetrySchedule still reports the attempt
			// count; a resubmitted verdict replaces it with a fresh state.
			st.next = time.Time{}
			st.exhausted = true
		} else {
			st.next = l.now().Add(cfg.backoffDelay(id, st.attempts))
		}
		journal := l.journalCapture(failedTransition(f, st))
		ig.mu.Unlock()
		journal()
	}
	return len(due)
}

// RetryBacklog returns how many failures currently await a redrive.
func (l *Loop) RetryBacklog() int {
	ig := &l.ingest
	ig.mu.Lock()
	defer ig.mu.Unlock()
	if !ig.retryOn {
		return 0
	}
	n := 0
	for _, st := range ig.retry {
		if !st.next.IsZero() {
			n++
		}
	}
	return n
}

// RetryItem is the observable state of one unresolved learn failure's
// self-heal schedule: how many learn attempts have been spent and when the
// next redrive is due — what an OCE dashboard shows next to the Failure
// list.
type RetryItem struct {
	// IncidentID identifies the incident whose learn keeps failing.
	IncidentID string
	// Reviewer is the OCE whose verdict queued the learn.
	Reviewer string
	// Attempts counts learn attempts made so far (the original failed
	// learn is attempt 1). 0 when the failure predates the retry queue's
	// task tracking (it then has no schedule entry).
	Attempts int
	// NextDue is when the next redrive fires per the loop's clock; zero
	// while retrying is off or the failure is exhausted.
	NextDue time.Time
	// Exhausted reports that MaxAttempts ran out: the failure stands until
	// the OCE resubmits, and no further redrives will be spent on it.
	Exhausted bool
	// Err is the most recent learn error.
	Err error
	// At is when the failure was last recorded.
	At time.Time
}

// RetrySchedule returns one RetryItem per unresolved learn failure,
// ordered by incident ID — the retry queue's full observable state,
// exported alongside RetryBacklog through report.RenderRetryQueue and the
// serving daemon's /metrics.
func (l *Loop) RetrySchedule() []RetryItem {
	ig := &l.ingest
	ig.mu.Lock()
	out := make([]RetryItem, 0, len(ig.failures))
	for id, f := range ig.failures {
		it := RetryItem{IncidentID: id, Reviewer: f.Reviewer, Err: f.Err, At: f.At}
		if st, ok := ig.retry[id]; ok {
			it.Attempts = st.attempts
			it.NextDue = st.next
			it.Exhausted = st.exhausted
		}
		out = append(out, it)
	}
	ig.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].IncidentID < out[j].IncidentID })
	return out
}

// Flush blocks until every learn submitted before the call has been
// applied — the read-your-writes barrier for a submitting OCE — and
// returns (and clears) any errors the background learns accumulated. With
// ingest off it returns nil immediately: the synchronous path has no
// deferred work. The per-incident Failure records survive a Flush; only
// the aggregate clears.
func (l *Loop) Flush() error {
	ig := &l.ingest
	ig.mu.Lock()
	defer ig.mu.Unlock()
	for ig.pending > 0 {
		ig.cond.Wait()
	}
	err := errors.Join(ig.errs...)
	ig.errs = nil
	return err
}

// Close stops the retry worker and the ingest worker (after draining the
// queue), returns the ingest slot to the shared budget, and reports any
// remaining async learn errors. Submissions after Close learn
// synchronously again; Close on a loop that never started either worker
// is a no-op.
func (l *Loop) Close() error {
	ig := &l.ingest
	ig.mu.Lock()
	if ig.retryOn {
		ig.retryOn = false
		close(ig.retryStop)
		retryDone := ig.retryDone
		ig.mu.Unlock()
		<-retryDone
		ig.mu.Lock()
	}
	if ig.queue == nil || ig.closed {
		ig.mu.Unlock()
		return nil
	}
	ig.closed = true
	close(ig.queue)
	done, granted := ig.done, ig.granted
	ig.granted = 0
	ig.mu.Unlock()

	<-done
	parallel.Release(granted)
	return l.Flush()
}

// Get returns the latest feedback for an incident.
func (l *Loop) Get(incidentID string) (*Entry, bool) {
	data, ok := l.store.Get(entryKey(incidentID))
	if !ok {
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	return &e, true
}

// History returns every feedback revision for an incident, oldest first
// (an incident may be re-reviewed after post-mortem).
func (l *Loop) History(incidentID string) []Entry {
	var out []Entry
	for _, v := range l.store.History(entryKey(incidentID)) {
		var e Entry
		if err := json.Unmarshal(v.Value, &e); err == nil {
			out = append(out, e)
		}
	}
	return out
}

// Stats aggregates prediction quality from the recorded feedback.
type Stats struct {
	Total     int
	Confirmed int
	Corrected int
	Rejected  int
	// ByPredicted counts verdicts per predicted category.
	ByPredicted map[incident.Category]CategoryStats
}

// CategoryStats is the per-category breakdown.
type CategoryStats struct {
	Confirmed int
	Corrected int
	Rejected  int
}

// Accuracy is the confirmed share of reviewed predictions.
func (s Stats) Accuracy() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Confirmed) / float64(s.Total)
}

// ComputeStats scans all feedback (latest verdict per incident).
func (l *Loop) ComputeStats() Stats {
	s := Stats{ByPredicted: make(map[incident.Category]CategoryStats)}
	for _, key := range l.store.Keys("feedback/") {
		data, ok := l.store.Get(key)
		if !ok {
			continue
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			continue
		}
		s.Total++
		cs := s.ByPredicted[e.Predicted]
		switch e.Verdict {
		case VerdictConfirm:
			s.Confirmed++
			cs.Confirmed++
		case VerdictCorrect:
			s.Corrected++
			cs.Corrected++
		case VerdictReject:
			s.Rejected++
			cs.Rejected++
		}
		s.ByPredicted[e.Predicted] = cs
	}
	return s
}

// CorrectionTable returns the observed coined-keyword → canonical-label
// corrections, most frequent first — the data from which a synonym table
// like EXPERIMENTS.md's scoring protocol is curated.
func (l *Loop) CorrectionTable() []Correction {
	counts := make(map[Correction]int)
	for _, key := range l.store.Keys("feedback/") {
		data, ok := l.store.Get(key)
		if !ok {
			continue
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil || e.Verdict != VerdictCorrect {
			continue
		}
		counts[Correction{From: e.Predicted, To: e.Corrected}]++
	}
	out := make([]Correction, 0, len(counts))
	for c := range counts {
		c.Count = counts[c]
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].From < out[j].From
	})
	return out
}

// Correction is one observed predicted→canonical mapping.
type Correction struct {
	From  incident.Category
	To    incident.Category
	Count int
}
