package feedback

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"repro/internal/incident"
)

// RetryTransition is one durable state change of the learn-failure retry
// queue — the unit the serving layer journals to its write-ahead log so a
// crashed process resumes redriving exactly the failures it owed, with
// their backoff positions, instead of forgetting them. Two shapes:
//
//   - Cleared: the incident's learn finally succeeded (redrive or
//     resubmit); any restored schedule entry for it is dropped.
//   - Not cleared: the incident's learn failed (again); the carried
//     Incident, attempt count and due time reconstruct the schedule
//     entry on restore.
type RetryTransition struct {
	// IncidentID identifies the incident whose schedule changed.
	IncidentID string
	// Reviewer is the OCE whose verdict queued the learn.
	Reviewer string
	// Attempts is the learn attempts spent so far.
	Attempts int
	// NextDue is when the next redrive fires; zero when exhausted,
	// cleared, or retrying is off.
	NextDue time.Time
	// Exhausted marks a failure whose MaxAttempts ran out.
	Exhausted bool
	// Cleared marks a successful learn: the schedule entry is gone.
	Cleared bool
	// Err is the learn error text (errors don't gob-encode; the restored
	// Failure wraps this string).
	Err string
	// At is when the transition was recorded, per the loop's clock.
	At time.Time
	// Incident is the labelled incident the failed learn retries — nil on
	// Cleared transitions.
	Incident *incident.Incident
}

// Encode serializes the transition for an opaque WAL sidecar record.
func (t RetryTransition) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&t); err != nil {
		return nil, fmt.Errorf("feedback: encode retry transition: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRetryTransition is Encode's inverse.
func DecodeRetryTransition(p []byte) (RetryTransition, error) {
	var t RetryTransition
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&t); err != nil {
		return RetryTransition{}, fmt.Errorf("feedback: decode retry transition: %w", err)
	}
	return t, nil
}

// SetRetryJournal installs the durability hook: every retry-schedule
// transition — failure recorded, redrive failed again, exhausted, learn
// succeeded — is handed to fn as it happens. The hook runs OUTSIDE the
// loop's locks (it may itself take locks, e.g. a WAL append), so under
// concurrent submits and redrives transitions for DIFFERENT incidents may
// reach the journal slightly out of order; per incident the inflight
// guard serializes them. RestoreRetrySchedule applies a journal in log
// order, so last-write-wins per incident holds either way. Nil
// uninstalls.
func (l *Loop) SetRetryJournal(fn func(RetryTransition)) {
	ig := &l.ingest
	ig.mu.Lock()
	ig.journal = fn
	ig.mu.Unlock()
}

// journalCapture snapshots the hook and builds the transition under
// ig.mu; the caller invokes the returned closure AFTER unlocking.
func (l *Loop) journalCapture(t RetryTransition) func() {
	if l.ingest.journal == nil {
		return func() {}
	}
	fn := l.ingest.journal
	return func() { fn(t) }
}

// clearedTransition is the journal record of a successful learn.
func clearedTransition(incidentID, reviewer string, at time.Time) RetryTransition {
	return RetryTransition{IncidentID: incidentID, Reviewer: reviewer, Cleared: true, At: at}
}

// failedTransition is the journal record of a (re)failed learn, built
// from the live schedule entry. Caller holds ig.mu.
func failedTransition(f Failure, st *retryState) RetryTransition {
	return RetryTransition{
		IncidentID: f.IncidentID,
		Reviewer:   f.Reviewer,
		Attempts:   st.attempts,
		NextDue:    st.next,
		Exhausted:  st.exhausted,
		Err:        f.Err.Error(),
		At:         f.At,
		Incident:   st.task.inc,
	}
}

// RestoreRetrySchedule rebuilds the retry queue's state from journaled
// transitions, applied in order (last write per incident wins): a crashed
// process calls this with its WAL's replayed sidecar records before
// StartRetry, and resumes owing exactly the redrives it owed. Non-cleared
// transitions without an Incident are skipped — there is nothing to
// redrive. Restored due times in the past simply fire on the first
// RedriveDue, which is the correct catch-up behaviour after downtime.
func (l *Loop) RestoreRetrySchedule(ts []RetryTransition) {
	ig := &l.ingest
	ig.mu.Lock()
	defer ig.mu.Unlock()
	for _, t := range ts {
		if t.Cleared {
			delete(ig.failures, t.IncidentID)
			delete(ig.retry, t.IncidentID)
			continue
		}
		if t.Incident == nil || t.IncidentID == "" {
			continue
		}
		if ig.failures == nil {
			ig.failures = make(map[string]Failure)
		}
		if ig.retry == nil {
			ig.retry = make(map[string]*retryState)
		}
		ig.failures[t.IncidentID] = Failure{
			IncidentID: t.IncidentID,
			Reviewer:   t.Reviewer,
			Err:        errors.New(t.Err),
			At:         t.At,
		}
		ig.retry[t.IncidentID] = &retryState{
			task:      learnTask{inc: t.Incident, reviewer: t.Reviewer},
			attempts:  t.Attempts,
			next:      t.NextDue,
			exhausted: t.Exhausted,
		}
	}
}

// RetryTransitions snapshots the live schedule as one transition per
// unresolved failure — what a WAL compaction re-journals into a freshly
// rotated log so rotation never forgets the queue. Ordered by incident ID.
func (l *Loop) RetryTransitions() []RetryTransition {
	items := l.RetrySchedule()
	ig := &l.ingest
	ig.mu.Lock()
	out := make([]RetryTransition, 0, len(items))
	for _, it := range items {
		st, ok := ig.retry[it.IncidentID]
		if !ok || st.task.inc == nil {
			continue
		}
		f := ig.failures[it.IncidentID]
		out = append(out, failedTransition(f, st))
	}
	ig.mu.Unlock()
	return out
}
