package feedback

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/incident"
)

// blockingLearner is a concurrency-safe learner whose Learn can be gated,
// so tests control exactly when background ingest work completes.
type blockingLearner struct {
	mu      sync.Mutex
	learned []*incident.Incident
	gate    chan struct{} // non-nil: Learn blocks until it receives
	failIDs map[string]bool
}

func (b *blockingLearner) Learn(inc *incident.Incident) error {
	if b.gate != nil {
		<-b.gate
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failIDs[inc.ID] {
		return fmt.Errorf("boom for %s", inc.ID)
	}
	b.learned = append(b.learned, inc)
	return nil
}

func (b *blockingLearner) count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.learned)
}

func TestStartIngestValidation(t *testing.T) {
	if err := New(nil, nil).StartIngest(4); err == nil {
		t.Fatal("record-only loop must refuse ingest")
	}
	lp := New(nil, &blockingLearner{})
	if err := lp.StartIngest(4); err != nil {
		t.Fatal(err)
	}
	defer lp.Close()
	if err := lp.StartIngest(4); err == nil {
		t.Fatal("double StartIngest must fail")
	}
}

// TestAsyncSubmitReturnsBeforeLearn pins the hot-path contract: with the
// learner blocked, Submit still returns (the learn is queued), and Flush
// blocks until the learn lands — read-your-writes for the submitting OCE.
func TestAsyncSubmitReturnsBeforeLearn(t *testing.T) {
	gate := make(chan struct{})
	learner := &blockingLearner{gate: gate}
	lp := fixedLoop2(learner)
	if err := lp.StartIngest(8); err != nil {
		t.Fatal(err)
	}
	defer lp.Close()

	if _, err := lp.Submit(predicted("INC-A1", "X"), VerdictConfirm, "", "oce", ""); err != nil {
		t.Fatal(err)
	}
	if learner.count() != 0 {
		t.Fatal("Submit ran the learn inline despite async ingest")
	}
	// The verdict itself is recorded immediately, even before the learn.
	if _, ok := lp.Get("INC-A1"); !ok {
		t.Fatal("verdict not recorded")
	}

	flushed := make(chan error, 1)
	go func() { flushed <- lp.Flush() }()
	select {
	case err := <-flushed:
		t.Fatalf("Flush returned %v before the learn completed", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(gate) // let the worker learn
	if err := <-flushed; err != nil {
		t.Fatal(err)
	}
	if learner.count() != 1 {
		t.Fatalf("learned %d, want 1 after Flush", learner.count())
	}
}

// TestAsyncQueueFullFallsBackInline floods a size-1 queue behind a blocked
// worker: every submission must still be learned exactly once (the
// overflow learns inline on the submitter), never dropped.
func TestAsyncQueueFullFallsBackInline(t *testing.T) {
	gate := make(chan struct{})
	learner := &blockingLearner{gate: gate}
	lp := fixedLoop2(learner)
	if err := lp.StartIngest(1); err != nil {
		t.Fatal(err)
	}
	defer lp.Close()

	const n = 6
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			_, err := lp.Submit(predicted(fmt.Sprintf("INC-Q%d", i), "X"), VerdictConfirm, "", "oce", "")
			done <- err
		}(i)
	}
	// Unblock all learns (worker + inline fallbacks).
	close(gate)
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := lp.Flush(); err != nil {
		t.Fatal(err)
	}
	if learner.count() != n {
		t.Fatalf("learned %d, want %d", learner.count(), n)
	}
}

// TestAsyncFlushSurfacesLearnErrors: a failed background learn must not
// vanish — Flush reports it, then clears it.
func TestAsyncFlushSurfacesLearnErrors(t *testing.T) {
	learner := &blockingLearner{failIDs: map[string]bool{"INC-BAD": true}}
	lp := fixedLoop2(learner)
	if err := lp.StartIngest(8); err != nil {
		t.Fatal(err)
	}
	defer lp.Close()
	if _, err := lp.Submit(predicted("INC-BAD", "X"), VerdictConfirm, "", "oce", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := lp.Submit(predicted("INC-OK", "X"), VerdictConfirm, "", "oce", ""); err != nil {
		t.Fatal(err)
	}
	if err := lp.Flush(); err == nil {
		t.Fatal("Flush must surface the async learn error")
	}
	if err := lp.Flush(); err != nil {
		t.Fatalf("second Flush should be clean, got %v", err)
	}
	if learner.count() != 1 {
		t.Fatalf("learned %d, want 1", learner.count())
	}
}

// TestCloseDrainsAndRestoresSync: Close waits out queued learns, and
// submissions after Close learn synchronously again.
func TestCloseDrainsAndRestoresSync(t *testing.T) {
	learner := &blockingLearner{}
	lp := fixedLoop2(learner)
	if err := lp.StartIngest(8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := lp.Submit(predicted(fmt.Sprintf("INC-C%d", i), "X"), VerdictConfirm, "", "oce", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := lp.Close(); err != nil {
		t.Fatal(err)
	}
	if learner.count() != 5 {
		t.Fatalf("Close left %d learned, want 5", learner.count())
	}
	if err := lp.Close(); err != nil {
		t.Fatalf("second Close should be a no-op, got %v", err)
	}
	if _, err := lp.Submit(predicted("INC-AFTER", "X"), VerdictConfirm, "", "oce", ""); err != nil {
		t.Fatal(err)
	}
	if learner.count() != 6 {
		t.Fatal("post-Close Submit must learn synchronously")
	}
	// Ingest can be restarted after Close.
	if err := lp.StartIngest(4); err != nil {
		t.Fatalf("StartIngest after Close: %v", err)
	}
	if _, err := lp.Submit(predicted("INC-RESTART", "X"), VerdictConfirm, "", "oce", ""); err != nil {
		t.Fatal(err)
	}
	if err := lp.Close(); err != nil {
		t.Fatal(err)
	}
	if learner.count() != 7 {
		t.Fatalf("restarted ingest learned %d, want 7", learner.count())
	}
}

// TestAsyncConcurrentSubmitFlush hammers concurrent submitters against
// concurrent flushers; run under -race this proves the ingest locking.
func TestAsyncConcurrentSubmitFlush(t *testing.T) {
	learner := &blockingLearner{}
	lp := fixedLoop2(learner)
	if err := lp.StartIngest(4); err != nil {
		t.Fatal(err)
	}
	const writers, perW = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if _, err := lp.Submit(predicted(fmt.Sprintf("INC-H%d-%d", w, i), "X"), VerdictConfirm, "", "oce", ""); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					if err := lp.Flush(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := lp.Close(); err != nil {
		t.Fatal(err)
	}
	if learner.count() != writers*perW {
		t.Fatalf("learned %d, want %d", learner.count(), writers*perW)
	}
}

// fixedLoop2 mirrors fixedLoop for the async learner type.
func fixedLoop2(l Learner) *Loop {
	lp := New(nil, l)
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	n := 0
	lp.SetClock(func() time.Time { mu.Lock(); n++; d := n; mu.Unlock(); return t0.Add(time.Duration(d) * time.Minute) })
	return lp
}

// TestAsyncFailureSurfacesWithoutFlush is the regression test for the
// async error-surfacing satellite: a failed background learn must become
// visible — through the notifier, Failures, and FailureFor — without
// anyone calling Flush.
func TestAsyncFailureSurfacesWithoutFlush(t *testing.T) {
	learner := &blockingLearner{failIDs: map[string]bool{"INC-BAD": true}}
	lp := fixedLoop2(learner)
	notified := make(chan Failure, 1)
	lp.SetNotifier(func(f Failure) { notified <- f })
	if err := lp.StartIngest(8); err != nil {
		t.Fatal(err)
	}
	defer lp.Close()

	if _, err := lp.Submit(predicted("INC-BAD", "X"), VerdictConfirm, "", "oce-alice", "note"); err != nil {
		t.Fatal(err)
	}
	// No Flush anywhere: the notifier is the delivery path.
	var f Failure
	select {
	case f = <-notified:
	case <-time.After(5 * time.Second):
		t.Fatal("notifier never fired for the failed background learn")
	}
	if f.IncidentID != "INC-BAD" || f.Reviewer != "oce-alice" || f.Err == nil {
		t.Fatalf("notified failure %+v lacks attribution", f)
	}
	if f.At.IsZero() {
		t.Fatal("failure has no timestamp")
	}
	got, ok := lp.FailureFor("INC-BAD")
	if !ok || got.Reviewer != "oce-alice" {
		t.Fatalf("FailureFor = %+v/%v, want the recorded failure", got, ok)
	}
	if all := lp.Failures(); len(all) != 1 || all[0].IncidentID != "INC-BAD" {
		t.Fatalf("Failures = %+v, want exactly the one failure", all)
	}

	// Flush clears the aggregate error but NOT the per-incident record.
	if err := lp.Flush(); err == nil {
		t.Fatal("Flush must still aggregate the async error")
	}
	if _, ok := lp.FailureFor("INC-BAD"); !ok {
		t.Fatal("Flush cleared the per-incident failure record")
	}

	// A later successful learn for the same incident resolves the failure.
	learner.mu.Lock()
	learner.failIDs = nil
	learner.mu.Unlock()
	if _, err := lp.Submit(predicted("INC-BAD", "X"), VerdictConfirm, "", "oce-alice", "retry"); err != nil {
		t.Fatal(err)
	}
	if err := lp.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := lp.FailureFor("INC-BAD"); ok {
		t.Fatal("successful re-learn must clear the failure record")
	}
	if len(lp.Failures()) != 0 {
		t.Fatalf("Failures = %+v after recovery, want none", lp.Failures())
	}
}

// TestInlineFailureAlsoRecorded: with ingest off, the learn error returns
// straight to the submitter AND lands in the failure record, so the
// dashboard view is complete either way.
func TestInlineFailureAlsoRecorded(t *testing.T) {
	learner := &blockingLearner{failIDs: map[string]bool{"INC-SYNC": true}}
	lp := fixedLoop2(learner)
	if _, err := lp.Submit(predicted("INC-SYNC", "X"), VerdictConfirm, "", "oce-bob", ""); err == nil {
		t.Fatal("inline learn failure must return to the submitter")
	}
	f, ok := lp.FailureFor("INC-SYNC")
	if !ok || f.Reviewer != "oce-bob" {
		t.Fatalf("inline failure not recorded: %+v/%v", f, ok)
	}
}
