// Package fasttext is a from-scratch Go implementation of the FastText
// embedding model RCACopilot trains on historical incidents (§4.2.1):
// skip-gram with negative sampling where every word vector is the sum of a
// word-id vector and hashed character-n-gram vectors, so out-of-vocabulary
// tokens (fresh machine names, new exception types) still embed near their
// morphological neighbours. The paper chose FastText because it is
// "efficient, insensitive to text input length, and generates dense
// matrices, making it easy to calculate the Euclidean distance between
// similar vectors"; this implementation preserves those properties.
//
// The package also provides the supervised FastText classifier used as a
// baseline in the paper's Table 2.
package fasttext

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/tokenize"
)

// Config parameterizes training. Zero fields take the documented defaults.
type Config struct {
	Dim        int     // embedding dimensionality (default 64)
	Epochs     int     // passes over the corpus (default 5)
	Window     int     // skip-gram context window (default 5)
	NegSamples int     // negative samples per positive pair (default 5)
	MinCount   int     // minimum word frequency for the vocabulary (default 2)
	Buckets    int     // hash buckets for char n-grams (default 1<<16)
	MinN       int     // smallest char n-gram (default 3)
	MaxN       int     // largest char n-gram (default 5)
	LR         float64 // initial learning rate (default 0.05)
	Seed       int64   // RNG seed (default 1)
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 64
	}
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.NegSamples <= 0 {
		c.NegSamples = 5
	}
	if c.MinCount <= 0 {
		c.MinCount = 2
	}
	if c.Buckets <= 0 {
		c.Buckets = 1 << 16
	}
	if c.MinN <= 0 {
		c.MinN = 3
	}
	if c.MaxN < c.MinN {
		c.MaxN = 5
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Model is a trained FastText embedding model.
type Model struct {
	cfg    Config
	vocab  map[string]int // word -> index
	words  []string       // index -> word
	counts []int          // index -> corpus frequency
	// total is the sum of counts, computed once on first use. The sync.Once
	// (rather than a plain lazy assignment) keeps a trained Model safe for
	// concurrent DocVector calls from the batch pipeline and the parallel
	// eval harness.
	total     int
	totalOnce sync.Once

	// in holds input vectors: words first, then n-gram buckets.
	in [][]float64
	// out holds output (context) vectors, one per vocabulary word.
	out [][]float64

	negTable []int // unigram^0.75 sampling table
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.cfg.Dim }

// VocabSize returns the number of in-vocabulary words.
func (m *Model) VocabSize() int { return len(m.words) }

// TrainSkipgram trains a FastText model over the corpus (one document per
// string). Training is deterministic for a given config.
func TrainSkipgram(corpus []string, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	m := &Model{cfg: cfg, vocab: make(map[string]int)}

	// Build the vocabulary.
	freq := make(map[string]int)
	docs := make([][]string, len(corpus))
	for i, doc := range corpus {
		docs[i] = tokenize.Words(doc)
		for _, w := range docs[i] {
			freq[w]++
		}
	}
	words := make([]string, 0, len(freq))
	for w, c := range freq {
		if c >= cfg.MinCount {
			words = append(words, w)
		}
	}
	sort.Strings(words)
	if len(words) == 0 {
		return nil, fmt.Errorf("fasttext: empty vocabulary (corpus too small for MinCount=%d)", cfg.MinCount)
	}
	for i, w := range words {
		m.vocab[w] = i
	}
	m.words = words
	m.counts = make([]int, len(words))
	for i, w := range words {
		m.counts[i] = freq[w]
	}

	// Allocate vectors: words + n-gram buckets in the input matrix.
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := len(words) + cfg.Buckets
	m.in = make([][]float64, total)
	for i := range m.in {
		m.in[i] = randomVector(rng, cfg.Dim)
	}
	m.out = make([][]float64, len(words))
	for i := range m.out {
		m.out[i] = make([]float64, cfg.Dim) // zeros, per word2vec convention
	}
	m.buildNegTable()

	// Convert docs to index sequences (OOV dropped during training).
	seqs := make([][]int, len(docs))
	tokens := 0
	for i, ws := range docs {
		for _, w := range ws {
			if id, ok := m.vocab[w]; ok {
				seqs[i] = append(seqs[i], id)
				tokens++
			}
		}
	}
	if tokens == 0 {
		return nil, fmt.Errorf("fasttext: no in-vocabulary tokens to train on")
	}

	// Skip-gram with negative sampling.
	totalSteps := cfg.Epochs * tokens
	step := 0
	hidden := make([]float64, cfg.Dim)
	grad := make([]float64, cfg.Dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, seq := range seqs {
			for pos, center := range seq {
				lr := cfg.LR * (1 - float64(step)/float64(totalSteps+1))
				if lr < cfg.LR*0.0001 {
					lr = cfg.LR * 0.0001
				}
				step++
				window := 1 + rng.Intn(cfg.Window)
				inputs := m.inputIndices(m.words[center])
				m.composeInput(inputs, hidden)
				for i := range grad {
					grad[i] = 0
				}
				changed := false
				for off := -window; off <= window; off++ {
					cpos := pos + off
					if off == 0 || cpos < 0 || cpos >= len(seq) {
						continue
					}
					target := seq[cpos]
					m.updatePair(hidden, grad, target, 1, lr)
					for n := 0; n < cfg.NegSamples; n++ {
						neg := m.negTable[rng.Intn(len(m.negTable))]
						if neg == target {
							continue
						}
						m.updatePair(hidden, grad, neg, 0, lr)
					}
					changed = true
				}
				if changed {
					scale := 1.0 / float64(len(inputs))
					for _, idx := range inputs {
						v := m.in[idx]
						for i := range v {
							v[i] += grad[i] * scale
						}
					}
				}
			}
		}
	}
	return m, nil
}

// updatePair applies one (hidden, output-word) SGD step with label 1
// (positive) or 0 (negative), accumulating the input-side gradient.
func (m *Model) updatePair(hidden, grad []float64, target int, label float64, lr float64) {
	ov := m.out[target]
	dot := 0.0
	for i := range hidden {
		dot += hidden[i] * ov[i]
	}
	g := (label - sigmoid(dot)) * lr
	for i := range hidden {
		grad[i] += g * ov[i]
		ov[i] += g * hidden[i]
	}
}

func sigmoid(x float64) float64 {
	switch {
	case x > 8:
		return 1
	case x < -8:
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

func randomVector(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	bound := 1.0 / float64(dim)
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * bound
	}
	return v
}

// buildNegTable fills the unigram^0.75 negative-sampling table.
func (m *Model) buildNegTable() {
	const tableSize = 1 << 17
	m.negTable = make([]int, 0, tableSize)
	var z float64
	for _, c := range m.counts {
		z += math.Pow(float64(c), 0.75)
	}
	for id, c := range m.counts {
		n := int(math.Ceil(math.Pow(float64(c), 0.75) / z * tableSize))
		for i := 0; i < n; i++ {
			m.negTable = append(m.negTable, id)
		}
	}
	if len(m.negTable) == 0 {
		m.negTable = []int{0}
	}
}

// ngrams returns the character n-grams of a word wrapped in boundary
// markers, per the FastText paper.
func (m *Model) ngrams(w string) []string {
	wrapped := "<" + w + ">"
	rs := []rune(wrapped)
	var out []string
	for n := m.cfg.MinN; n <= m.cfg.MaxN; n++ {
		for i := 0; i+n <= len(rs); i++ {
			g := string(rs[i : i+n])
			if g == wrapped {
				continue // the full word is handled by its word id
			}
			out = append(out, g)
		}
	}
	return out
}

func (m *Model) bucket(gram string) int {
	h := fnv.New32a()
	h.Write([]byte(gram))
	return len(m.words) + int(h.Sum32())%m.cfg.Buckets
}

// inputIndices returns the input-matrix rows composing a word's vector:
// its word id (if in vocabulary) plus its hashed n-gram buckets.
func (m *Model) inputIndices(w string) []int {
	var idx []int
	if id, ok := m.vocab[w]; ok {
		idx = append(idx, id)
	}
	for _, g := range m.ngrams(w) {
		idx = append(idx, m.bucket(g))
	}
	if len(idx) == 0 {
		idx = append(idx, m.bucket("<"+w+">"))
	}
	return idx
}

// composeInput writes the mean of the input rows into dst.
func (m *Model) composeInput(indices []int, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for _, idx := range indices {
		v := m.in[idx]
		for i := range dst {
			dst[i] += v[i]
		}
	}
	scale := 1.0 / float64(len(indices))
	for i := range dst {
		dst[i] *= scale
	}
}

// WordVector returns the embedding of a word. Out-of-vocabulary words are
// composed purely from their character n-grams — FastText's signature
// behaviour.
func (m *Model) WordVector(w string) []float64 {
	ws := tokenize.Words(w)
	word := w
	if len(ws) == 1 {
		word = ws[0]
	}
	v := make([]float64, m.cfg.Dim)
	m.composeInput(m.inputIndices(word), v)
	return v
}

// sifWeight returns the smooth-inverse-frequency weight of a word: rare,
// information-bearing tokens (exception names, distinctive counters) weigh
// near 1, while corpus boilerplate (machine names, table headers) is damped
// toward 0. Out-of-vocabulary words take full weight.
func (m *Model) sifWeight(w string) float64 {
	const a = 1e-3
	// Pure numbers (counter values, PIDs, timestamps) are semantic noise:
	// their char-n-gram vectors are arbitrary and they never repeat, so
	// they would otherwise enter at full out-of-vocabulary weight.
	if allDigits(w) {
		return 0.02
	}
	id, ok := m.vocab[w]
	if !ok {
		return 1
	}
	p := float64(m.counts[id]) / float64(m.totalTokens())
	return a / (a + p)
}

func allDigits(w string) bool {
	if w == "" {
		return false
	}
	for _, r := range w {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func (m *Model) totalTokens() int {
	m.totalOnce.Do(func() {
		for _, c := range m.counts {
			m.total += c
		}
		if m.total == 0 {
			m.total = 1
		}
	})
	return m.total
}

// DocVector embeds a document as the smooth-inverse-frequency weighted mean
// of its word vectors. SIF weighting keeps the representation
// length-insensitive (a log excerpt and its longer variant land nearby)
// while preventing the boilerplate that dominates incident text by volume
// from drowning the root-cause-bearing vocabulary.
func (m *Model) DocVector(text string) []float64 {
	v := make([]float64, m.cfg.Dim)
	ws := tokenize.Words(text)
	if len(ws) == 0 {
		return v
	}
	tmp := make([]float64, m.cfg.Dim)
	var totalW float64
	for _, w := range ws {
		weight := m.sifWeight(w)
		m.composeInput(m.inputIndices(w), tmp)
		for i := range v {
			v[i] += tmp[i] * weight
		}
		totalW += weight
	}
	if totalW > 0 {
		for i := range v {
			v[i] /= totalW
		}
	}
	return v
}

// Similarity returns the cosine similarity of two words' embeddings.
func (m *Model) Similarity(a, b string) float64 {
	return Cosine(m.WordVector(a), m.WordVector(b))
}

// Cosine returns the cosine similarity of two vectors (0 when either is
// zero).
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Euclidean returns the Euclidean distance between two vectors, the
// distance the paper's similarity formula is built on.
func Euclidean(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
