package fasttext

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/tokenize"
)

// Classifier is the supervised FastText mode used as a Table-2 baseline:
// documents embed as the mean of word/n-gram input vectors, and a linear
// softmax layer over those embeddings predicts the root-cause category.
// Both the embeddings and the softmax weights are trained jointly by SGD,
// as in the original library.
type Classifier struct {
	model  *Model
	labels []string
	lindex map[string]int
	// w is the softmax weight matrix, one row per label.
	w [][]float64
}

// TrainSupervised trains a classifier from parallel texts/labels slices.
func TrainSupervised(texts, labels []string, cfg Config) (*Classifier, error) {
	if len(texts) != len(labels) {
		return nil, fmt.Errorf("fasttext: %d texts but %d labels", len(texts), len(labels))
	}
	if len(texts) == 0 {
		return nil, fmt.Errorf("fasttext: empty training set")
	}
	cfg = cfg.withDefaults()

	// Reuse the skip-gram vocabulary/embedding machinery, but initialize
	// input vectors only — training is driven by the classification loss.
	m := &Model{cfg: cfg, vocab: make(map[string]int)}
	freq := make(map[string]int)
	docs := make([][]string, len(texts))
	for i, doc := range texts {
		docs[i] = tokenize.Words(doc)
		for _, w := range docs[i] {
			freq[w]++
		}
	}
	words := make([]string, 0, len(freq))
	for w, c := range freq {
		if c >= cfg.MinCount {
			words = append(words, w)
		}
	}
	sort.Strings(words)
	for i, w := range words {
		m.vocab[w] = i
	}
	m.words = words
	m.counts = make([]int, len(words))
	for i, w := range words {
		m.counts[i] = freq[w]
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m.in = make([][]float64, len(words)+cfg.Buckets)
	for i := range m.in {
		m.in[i] = randomVector(rng, cfg.Dim)
	}

	c := &Classifier{model: m, lindex: make(map[string]int)}
	for _, l := range labels {
		if _, ok := c.lindex[l]; !ok {
			c.lindex[l] = len(c.labels)
			c.labels = append(c.labels, l)
		}
	}
	c.w = make([][]float64, len(c.labels))
	for i := range c.w {
		c.w[i] = make([]float64, cfg.Dim)
	}

	// Pre-compute per-document input rows.
	docInputs := make([][][]int, len(docs))
	for i, ws := range docs {
		rows := make([][]int, 0, len(ws))
		for _, w := range ws {
			rows = append(rows, m.inputIndices(w))
		}
		docInputs[i] = rows
	}

	hidden := make([]float64, cfg.Dim)
	probs := make([]float64, len(c.labels))
	grad := make([]float64, cfg.Dim)
	order := rng.Perm(len(texts))
	steps := cfg.Epochs * len(texts)
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, di := range order {
			lr := cfg.LR * (1 - float64(step)/float64(steps+1))
			step++
			rows := docInputs[di]
			if len(rows) == 0 {
				continue
			}
			c.embedRows(rows, hidden)
			c.softmax(hidden, probs)
			y := c.lindex[labels[di]]
			for i := range grad {
				grad[i] = 0
			}
			for li := range c.labels {
				delta := probs[li]
				if li == y {
					delta -= 1
				}
				g := delta * lr
				wv := c.w[li]
				for i := range wv {
					grad[i] -= g * wv[i]
					wv[i] -= g * hidden[i]
				}
			}
			// Distribute the hidden gradient back to the input rows.
			scale := 1.0 / float64(len(rows))
			for _, row := range rows {
				rowScale := scale / float64(len(row))
				for _, idx := range row {
					v := m.in[idx]
					for i := range v {
						v[i] += grad[i] * rowScale
					}
				}
			}
		}
	}
	return c, nil
}

// embedRows averages per-word input compositions into dst.
func (c *Classifier) embedRows(rows [][]int, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	tmp := make([]float64, len(dst))
	for _, row := range rows {
		c.model.composeInput(row, tmp)
		for i := range dst {
			dst[i] += tmp[i]
		}
	}
	scale := 1.0 / float64(len(rows))
	for i := range dst {
		dst[i] *= scale
	}
}

func (c *Classifier) softmax(hidden []float64, probs []float64) {
	maxLogit := math.Inf(-1)
	for li, wv := range c.w {
		dot := 0.0
		for i := range hidden {
			dot += hidden[i] * wv[i]
		}
		probs[li] = dot
		if dot > maxLogit {
			maxLogit = dot
		}
	}
	var z float64
	for li := range probs {
		probs[li] = math.Exp(probs[li] - maxLogit)
		z += probs[li]
	}
	for li := range probs {
		probs[li] /= z
	}
}

// Labels returns the label set in training order.
func (c *Classifier) Labels() []string { return append([]string(nil), c.labels...) }

// Predict returns the most probable label for the text and its probability.
func (c *Classifier) Predict(text string) (string, float64) {
	ws := tokenize.Words(text)
	if len(ws) == 0 {
		return c.labels[0], 1.0 / float64(len(c.labels))
	}
	rows := make([][]int, 0, len(ws))
	for _, w := range ws {
		rows = append(rows, c.model.inputIndices(w))
	}
	hidden := make([]float64, c.model.cfg.Dim)
	c.embedRows(rows, hidden)
	probs := make([]float64, len(c.labels))
	c.softmax(hidden, probs)
	best, bestP := 0, -1.0
	for li, p := range probs {
		if p > bestP {
			best, bestP = li, p
		}
	}
	return c.labels[best], bestP
}
