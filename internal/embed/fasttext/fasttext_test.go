package fasttext

import (
	"math"
	"testing"
	"testing/quick"
)

// smallCfg keeps tests fast.
func smallCfg() Config {
	return Config{Dim: 32, Epochs: 8, Window: 4, NegSamples: 4, MinCount: 1, Buckets: 1 << 12, Seed: 7}
}

// topicCorpus has two well-separated topics: socket/port exhaustion and
// disk/io saturation.
func topicCorpus() []string {
	sockets := []string{
		"udp socket count exhausted on transport process hub port",
		"hub port exhaustion udp socket transport winsock error",
		"winsock error connecting host udp port socket exhausted",
		"transport process consumed udp socket hub port winsock",
		"socket count by process udp hub port transport exhausted",
	}
	disks := []string{
		"disk volume full io exception processes crashed storage",
		"io exception thrown because disk volume full storage crashed",
		"storage disk full volume crashed processes io exception",
		"processes crashed io exception disk storage volume full",
		"volume full disk io exception storage crashed processes",
	}
	var out []string
	for i := 0; i < 6; i++ {
		out = append(out, sockets...)
		out = append(out, disks...)
	}
	return out
}

func TestTrainSkipgramLearnsTopics(t *testing.T) {
	m, err := TrainSkipgram(topicCorpus(), smallCfg())
	if err != nil {
		t.Fatalf("TrainSkipgram: %v", err)
	}
	if m.VocabSize() == 0 || m.Dim() != 32 {
		t.Fatalf("model shape wrong: vocab=%d dim=%d", m.VocabSize(), m.Dim())
	}
	within := m.Similarity("socket", "udp")
	across := m.Similarity("socket", "disk")
	if within <= across {
		t.Errorf("within-topic similarity %.3f should exceed across-topic %.3f", within, across)
	}
	docSock := m.DocVector("udp socket port exhausted")
	docDisk := m.DocVector("disk volume io full")
	if Euclidean(docSock, docDisk) <= 0 {
		t.Error("distinct topic documents should have positive distance")
	}
}

func TestDeterministicTraining(t *testing.T) {
	a, err := TrainSkipgram(topicCorpus(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainSkipgram(topicCorpus(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	va, vb := a.WordVector("socket"), b.WordVector("socket")
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("same seed must produce identical vectors")
		}
	}
}

func TestOOVWordsGetSubwordVectors(t *testing.T) {
	m, err := TrainSkipgram(topicCorpus(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// "socketeer" is OOV but shares n-grams with "socket".
	oov := m.WordVector("socketeer")
	nonZero := false
	for _, x := range oov {
		if x != 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("OOV vector should be composed from n-gram buckets")
	}
	simStem := Cosine(oov, m.WordVector("socket"))
	simFar := Cosine(oov, m.WordVector("volume"))
	if simStem <= simFar {
		t.Errorf("OOV should sit near its stem: sim(socketeer,socket)=%.3f sim(socketeer,volume)=%.3f",
			simStem, simFar)
	}
}

func TestDocVectorLengthInsensitive(t *testing.T) {
	m, err := TrainSkipgram(topicCorpus(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	once := m.DocVector("udp socket port")
	thrice := m.DocVector("udp socket port udp socket port udp socket port")
	for i := range once {
		if math.Abs(once[i]-thrice[i]) > 1e-12 {
			t.Fatal("repeating a document must not move its mean vector")
		}
	}
}

func TestDocVectorEmptyIsZero(t *testing.T) {
	m, err := TrainSkipgram(topicCorpus(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	v := m.DocVector("   ")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty document should embed to the zero vector")
		}
	}
}

func TestTrainSkipgramErrors(t *testing.T) {
	if _, err := TrainSkipgram(nil, smallCfg()); err == nil {
		t.Fatal("empty corpus should fail")
	}
	cfg := smallCfg()
	cfg.MinCount = 100
	if _, err := TrainSkipgram(topicCorpus(), cfg); err == nil {
		t.Fatal("impossible MinCount should fail")
	}
}

func TestSupervisedClassifierSeparates(t *testing.T) {
	var texts, labels []string
	for i := 0; i < 25; i++ {
		texts = append(texts, "udp socket exhausted hub port transport winsock")
		labels = append(labels, "HubPortExhaustion")
		texts = append(texts, "disk volume full io exception crashed storage")
		labels = append(labels, "FullDisk")
	}
	c, err := TrainSupervised(texts, labels, smallCfg())
	if err != nil {
		t.Fatalf("TrainSupervised: %v", err)
	}
	if got := len(c.Labels()); got != 2 {
		t.Fatalf("labels = %d, want 2", got)
	}
	correct := 0
	for i, txt := range texts {
		if pred, _ := c.Predict(txt); pred == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(texts)); acc < 0.95 {
		t.Errorf("train accuracy %.2f on trivially separable data, want >= 0.95", acc)
	}
	// Held-out paraphrases.
	if pred, _ := c.Predict("socket udp port winsock"); pred != "HubPortExhaustion" {
		t.Errorf("paraphrase predicted %s", pred)
	}
	if pred, _ := c.Predict("full disk io storage"); pred != "FullDisk" {
		t.Errorf("paraphrase predicted %s", pred)
	}
}

func TestSupervisedErrors(t *testing.T) {
	if _, err := TrainSupervised([]string{"a"}, []string{"x", "y"}, smallCfg()); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
	if _, err := TrainSupervised(nil, nil, smallCfg()); err == nil {
		t.Fatal("empty training set should fail")
	}
}

func TestPredictEmptyText(t *testing.T) {
	c, err := TrainSupervised(
		[]string{"a b c", "d e f"},
		[]string{"x", "y"},
		smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	label, p := c.Predict("")
	if label == "" || p <= 0 {
		t.Fatal("empty text should still yield a label with uniform probability")
	}
}

// clamp maps quick-generated values into a numerically safe range so the
// properties are not confounded by float64 overflow to Inf.
func clamp(a [8]float64) []float64 {
	out := make([]float64, len(a))
	for i, x := range a {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		out[i] = math.Mod(x, 1000)
	}
	return out
}

func TestCosineBounds(t *testing.T) {
	f := func(a, b [8]float64) bool {
		c := Cosine(clamp(a), clamp(b))
		return c >= -1.0000001 && c <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCosineZeroVector(t *testing.T) {
	if got := Cosine(make([]float64, 4), []float64{1, 2, 3, 4}); got != 0 {
		t.Fatalf("Cosine with zero vector = %f, want 0", got)
	}
}

func TestEuclideanProperties(t *testing.T) {
	symmetric := func(a, b [8]float64) bool {
		x, y := clamp(a), clamp(b)
		return math.Abs(Euclidean(x, y)-Euclidean(y, x)) < 1e-12
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	identity := func(a [8]float64) bool {
		x := clamp(a)
		return Euclidean(x, x) == 0
	}
	if err := quick.Check(identity, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	triangle := func(a, b, c [8]float64) bool {
		x, y, z := clamp(a), clamp(b), clamp(c)
		return Euclidean(x, z) <= Euclidean(x, y)+Euclidean(y, z)+1e-9
	}
	if err := quick.Check(triangle, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
