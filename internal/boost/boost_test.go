package boost

import (
	"math/rand"
	"testing"
)

// clusters generates n points per class around 3 well-separated centers.
func clusters(n int, seed int64) ([][]float64, []string) {
	rng := rand.New(rand.NewSource(seed))
	centers := map[string][]float64{
		"alpha": {0, 0, 1},
		"beta":  {5, 5, 0},
		"gamma": {0, 5, -3},
	}
	var x [][]float64
	var y []string
	for label, c := range centers {
		for i := 0; i < n; i++ {
			x = append(x, []float64{
				c[0] + rng.NormFloat64()*0.4,
				c[1] + rng.NormFloat64()*0.4,
				c[2] + rng.NormFloat64()*0.4,
			})
			y = append(y, label)
		}
	}
	return x, y
}

func TestTrainSeparatesClusters(t *testing.T) {
	x, y := clusters(40, 3)
	c, err := Train(x, y, Config{Rounds: 15, MaxDepth: 3})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if c.NumTrees() != 15 {
		t.Fatalf("NumTrees = %d, want 15", c.NumTrees())
	}
	if len(c.Labels()) != 3 {
		t.Fatalf("labels = %v, want 3 classes", c.Labels())
	}
	correct := 0
	for i := range x {
		if pred, _ := c.Predict(x[i]); pred == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.95 {
		t.Errorf("train accuracy = %.3f, want >= 0.95 on separable clusters", acc)
	}
	// Held-out points near each center.
	for label, probe := range map[string][]float64{
		"alpha": {0.1, -0.1, 1.1},
		"beta":  {5.2, 4.9, 0.1},
		"gamma": {-0.1, 5.1, -2.9},
	} {
		if pred, p := c.Predict(probe); pred != label {
			t.Errorf("probe near %s predicted %s (p=%.2f)", label, pred, p)
		}
	}
}

func TestPredictProbabilityInRange(t *testing.T) {
	x, y := clusters(20, 5)
	c, err := Train(x, y, Config{Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if _, p := c.Predict(x[i]); p <= 0 || p > 1 {
			t.Fatalf("probability %f out of range", p)
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	x, y := clusters(20, 9)
	a, err := Train(x, y, Config{Rounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(x, y, Config{Rounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		pa, _ := a.Predict(x[i])
		pb, _ := b.Predict(x[i])
		if pa != pb {
			t.Fatal("training must be deterministic")
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("empty training set should fail")
	}
	if _, err := Train([][]float64{{1}}, []string{"a", "b"}, Config{}); err == nil {
		t.Fatal("mismatched rows/labels should fail")
	}
	if _, err := Train([][]float64{{1}, {2}}, []string{"a", "a"}, Config{}); err == nil {
		t.Fatal("single-class training should fail")
	}
}

func TestImbalancedLongTailBehaviour(t *testing.T) {
	// One dominant class, several singletons: the boosted model should at
	// least learn the dominant class (the mechanism behind its weak Table-2
	// macro-F1 on long-tail incident data).
	var x [][]float64
	var y []string
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		x = append(x, []float64{rng.NormFloat64() * 0.3, 1})
		y = append(y, "dominant")
	}
	for i := 0; i < 3; i++ {
		x = append(x, []float64{5 + float64(i), -1})
		y = append(y, "rare")
	}
	c, err := Train(x, y, Config{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	correctDominant := 0
	for i := 0; i < 30; i++ {
		if pred, _ := c.Predict(x[i]); pred == "dominant" {
			correctDominant++
		}
	}
	if correctDominant < 27 {
		t.Errorf("dominant class recall = %d/30, want >= 27", correctDominant)
	}
}

func TestConstantFeaturesYieldPriorPrediction(t *testing.T) {
	// With no usable splits, prediction must fall back to class priors.
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []string{"a", "a", "a", "b"}
	c, err := Train(x, y, Config{Rounds: 3, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pred, _ := c.Predict([]float64{1, 1}); pred != "a" {
		t.Fatalf("prior fallback predicted %s, want majority class a", pred)
	}
}
