// Package boost implements gradient-boosted decision trees with a softmax
// multiclass objective — the XGBoost substitute for the paper's Table-2
// baseline ("XGBoost provides a parallel tree boosting that has been
// commonly used in the networking system diagnosis").
//
// Each boosting round fits one multi-output regression tree to the negative
// gradient of the cross-entropy loss; leaves store a per-class step vector.
// Splits greedily maximize the summed squared-gradient gain, the same
// criterion family XGBoost uses (without its regularization terms, which do
// not change the baseline's qualitative behaviour on this task).
package boost

import (
	"fmt"
	"math"
)

// Config parameterizes training.
type Config struct {
	Rounds    int     // boosting rounds (default 20)
	MaxDepth  int     // tree depth (default 3)
	LR        float64 // shrinkage (default 0.3)
	MinLeaf   int     // minimum samples per leaf (default 2)
	NumThresh int     // candidate thresholds per feature (default 8)
}

func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 20
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.LR <= 0 {
		c.LR = 0.3
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.NumThresh <= 0 {
		c.NumThresh = 8
	}
	return c
}

// node is one tree node; leaves have feature == -1 and carry values.
type node struct {
	feature int
	thresh  float64
	left    *node
	right   *node
	value   []float64
}

func (n *node) isLeaf() bool { return n.feature < 0 }

func (n *node) predict(x []float64) []float64 {
	for !n.isLeaf() {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Classifier is a trained multiclass boosted-tree model.
type Classifier struct {
	cfg    Config
	labels []string
	trees  []*node
	base   []float64 // class log-priors
}

// Labels returns the label set in training order.
func (c *Classifier) Labels() []string { return append([]string(nil), c.labels...) }

// NumTrees returns how many boosting rounds were fitted.
func (c *Classifier) NumTrees() int { return len(c.trees) }

// Train fits a classifier from feature matrix X and parallel string labels.
func Train(x [][]float64, labels []string, cfg Config) (*Classifier, error) {
	if len(x) == 0 || len(x) != len(labels) {
		return nil, fmt.Errorf("boost: %d rows but %d labels", len(x), len(labels))
	}
	cfg = cfg.withDefaults()

	c := &Classifier{cfg: cfg}
	lindex := make(map[string]int)
	y := make([]int, len(labels))
	for i, l := range labels {
		id, ok := lindex[l]
		if !ok {
			id = len(c.labels)
			lindex[l] = id
			c.labels = append(c.labels, l)
		}
		y[i] = id
	}
	k := len(c.labels)
	n := len(x)
	if k < 2 {
		return nil, fmt.Errorf("boost: need at least 2 classes, got %d", k)
	}

	// Class log-prior initialization.
	c.base = make([]float64, k)
	for _, yi := range y {
		c.base[yi]++
	}
	for i := range c.base {
		c.base[i] = math.Log((c.base[i] + 1) / float64(n+k))
	}

	// Running raw scores.
	scores := make([][]float64, n)
	for i := range scores {
		scores[i] = append([]float64(nil), c.base...)
	}
	probs := make([]float64, k)
	grads := make([][]float64, n)
	for i := range grads {
		grads[i] = make([]float64, k)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}

	for round := 0; round < cfg.Rounds; round++ {
		// Negative gradient of softmax cross-entropy: y_onehot - p.
		for i := range x {
			softmaxInto(scores[i], probs)
			for j := 0; j < k; j++ {
				g := -probs[j]
				if y[i] == j {
					g += 1
				}
				grads[i][j] = g
			}
		}
		tree := c.buildTree(x, grads, idx, cfg.MaxDepth)
		c.trees = append(c.trees, tree)
		for i := range x {
			step := tree.predict(x[i])
			for j := 0; j < k; j++ {
				scores[i][j] += cfg.LR * step[j]
			}
		}
	}
	return c, nil
}

// buildTree recursively fits a multi-output regression tree on the gradient
// targets of the samples in idx.
func (c *Classifier) buildTree(x, grads [][]float64, idx []int, depth int) *node {
	if depth == 0 || len(idx) < 2*c.cfg.MinLeaf {
		return c.leaf(grads, idx)
	}
	feature, thresh, ok := c.bestSplit(x, grads, idx)
	if !ok {
		return c.leaf(grads, idx)
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feature] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < c.cfg.MinLeaf || len(right) < c.cfg.MinLeaf {
		return c.leaf(grads, idx)
	}
	return &node{
		feature: feature,
		thresh:  thresh,
		left:    c.buildTree(x, grads, left, depth-1),
		right:   c.buildTree(x, grads, right, depth-1),
	}
}

// leaf returns a leaf whose value is the mean gradient of its samples.
func (c *Classifier) leaf(grads [][]float64, idx []int) *node {
	k := len(c.labels)
	v := make([]float64, k)
	if len(idx) == 0 {
		return &node{feature: -1, value: v}
	}
	for _, i := range idx {
		for j := 0; j < k; j++ {
			v[j] += grads[i][j]
		}
	}
	for j := range v {
		v[j] /= float64(len(idx))
	}
	return &node{feature: -1, value: v}
}

// bestSplit scans features × candidate thresholds for the split maximizing
// gain = |G_L|²/n_L + |G_R|²/n_R − |G|²/n (summed over classes).
func (c *Classifier) bestSplit(x, grads [][]float64, idx []int) (int, float64, bool) {
	if len(idx) == 0 {
		return 0, 0, false
	}
	numFeatures := len(x[idx[0]])
	k := len(c.labels)

	total := make([]float64, k)
	for _, i := range idx {
		for j := 0; j < k; j++ {
			total[j] += grads[i][j]
		}
	}
	parentScore := sqNorm(total) / float64(len(idx))

	bestGain, bestFeature, bestThresh := 1e-12, -1, 0.0
	gl := make([]float64, k)
	for f := 0; f < numFeatures; f++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, i := range idx {
			v := x[i][f]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			continue
		}
		for t := 1; t <= c.cfg.NumThresh; t++ {
			thresh := lo + (hi-lo)*float64(t)/float64(c.cfg.NumThresh+1)
			for j := range gl {
				gl[j] = 0
			}
			nl := 0
			for _, i := range idx {
				if x[i][f] <= thresh {
					nl++
					for j := 0; j < k; j++ {
						gl[j] += grads[i][j]
					}
				}
			}
			nr := len(idx) - nl
			if nl < c.cfg.MinLeaf || nr < c.cfg.MinLeaf {
				continue
			}
			var right float64
			for j := 0; j < k; j++ {
				d := total[j] - gl[j]
				right += d * d
			}
			gain := sqNorm(gl)/float64(nl) + right/float64(nr) - parentScore
			if gain > bestGain {
				bestGain, bestFeature, bestThresh = gain, f, thresh
			}
		}
	}
	return bestFeature, bestThresh, bestFeature >= 0
}

func sqNorm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

func softmaxInto(scores []float64, probs []float64) {
	maxS := math.Inf(-1)
	for _, s := range scores {
		if s > maxS {
			maxS = s
		}
	}
	var z float64
	for i, s := range scores {
		probs[i] = math.Exp(s - maxS)
		z += probs[i]
	}
	for i := range probs {
		probs[i] /= z
	}
}

// Predict returns the most probable label and its probability.
func (c *Classifier) Predict(x []float64) (string, float64) {
	scores := append([]float64(nil), c.base...)
	for _, t := range c.trees {
		step := t.predict(x)
		for j := range scores {
			scores[j] += c.cfg.LR * step[j]
		}
	}
	probs := make([]float64, len(scores))
	softmaxInto(scores, probs)
	best, bestP := 0, -1.0
	for i, p := range probs {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return c.labels[best], bestP
}
