// Package walfault is the WAL's crash-injection harness: an in-memory
// wal.File that models what a kernel actually guarantees — bytes written
// before the last successful fsync survive a crash, everything after is
// up for grabs — plus a fault plan that fails writes (cleanly or torn
// mid-frame) and fsyncs at chosen points. Tests drive a wal.Writer over
// a File, "crash" it by reading Durable(), and replay the survivor
// image to prove prefix-consistent recovery.
package walfault

import (
	"errors"
	"sync"
)

// ErrInjected is the error every planned fault returns.
var ErrInjected = errors.New("walfault: injected fault")

// Plan schedules faults. The zero Plan injects nothing.
type Plan struct {
	// FailWriteAtByte fails the write that would extend the file past
	// this many bytes. With TornWrite the prefix up to the boundary
	// lands first — a torn frame — otherwise the write fails whole.
	// 0 means never.
	FailWriteAtByte int64
	// TornWrite makes the failing write partial instead of dropped.
	TornWrite bool
	// FailSyncAt fails the Nth fsync (1-based) and every one after —
	// the short-fsync fault: bytes are in the file image but never
	// durable. 0 means never.
	FailSyncAt int
}

// File is an in-memory crash-faithful log file. The durable prefix only
// advances on a successful Sync; Durable() is the byte image a crash at
// any moment would leave behind.
type File struct {
	mu      sync.Mutex
	plan    Plan
	buf     []byte
	durable int
	syncs   int
	closed  bool
}

// New returns a File with the given fault plan and an already-durable
// initial image (typically a wal.Header()).
func New(plan Plan, initial []byte) *File {
	f := &File{plan: plan, buf: append([]byte(nil), initial...)}
	f.durable = len(f.buf)
	return f
}

// Write implements wal.File, honoring the write-fault plan.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, errors.New("walfault: write on closed file")
	}
	if f.plan.FailWriteAtByte > 0 && int64(len(f.buf)+len(p)) > f.plan.FailWriteAtByte {
		if f.plan.TornWrite {
			keep := int(f.plan.FailWriteAtByte) - len(f.buf)
			if keep > 0 {
				f.buf = append(f.buf, p[:keep]...)
			}
		}
		return 0, ErrInjected
	}
	f.buf = append(f.buf, p...)
	return len(p), nil
}

// Sync implements wal.File: on success the whole image becomes durable;
// a planned short-fsync leaves the durable watermark where it was.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.plan.FailSyncAt > 0 && f.syncs >= f.plan.FailSyncAt {
		return ErrInjected
	}
	f.durable = len(f.buf)
	return nil
}

// Close implements wal.File.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

// Durable returns the bytes a crash right now would preserve: the image
// as of the last successful fsync.
func (f *File) Durable() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.buf[:f.durable]...)
}

// Bytes returns the full written image, durable or not — what survives
// a clean close rather than a crash.
func (f *File) Bytes() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.buf...)
}

// Syncs returns how many fsyncs were attempted.
func (f *File) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}
