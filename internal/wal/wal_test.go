package wal_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/wal"
	"repro/internal/wal/walfault"
)

// collect replays data into a slice of records.
func collect(t *testing.T, data []byte) (recs []wal.Record, good int64, err error) {
	t.Helper()
	_, good, err = wal.Replay(data, func(r wal.Record) error {
		recs = append(recs, wal.Record{Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	return recs, good, err
}

// TestRoundTrip pins the basic contract: records appended and synced
// through a Writer replay back byte-identical, in order, with a clean
// (nil) end and the full file length as the good offset.
func TestRoundTrip(t *testing.T) {
	f := walfault.New(walfault.Plan{}, wal.Header())
	w := wal.NewWriter(f, wal.HeaderLen, wal.Options{SyncEvery: 1000, SyncInterval: time.Hour})
	want := []wal.Record{
		{Type: 1, Payload: []byte("alpha")},
		{Type: 2, Payload: nil},
		{Type: 3, Payload: bytes.Repeat([]byte{0xAB}, 1024)},
	}
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data := f.Durable()
	got, good, err := collect(t, data)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if good != int64(len(data)) {
		t.Fatalf("good offset %d, want %d", good, len(data))
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if w.Appended() != 3 || w.Synced() != 3 {
		t.Fatalf("counters appended=%d synced=%d, want 3/3", w.Appended(), w.Synced())
	}
	if w.Bytes() != int64(len(data)) {
		t.Fatalf("Bytes() = %d, want %d", w.Bytes(), len(data))
	}
}

// TestGroupCommitSizeBoundary pins that the SyncEvery-th append flushes
// and fsyncs the whole batch from the appending goroutine: before it
// nothing is durable, after it everything is.
func TestGroupCommitSizeBoundary(t *testing.T) {
	f := walfault.New(walfault.Plan{}, wal.Header())
	w := wal.NewWriter(f, wal.HeaderLen, wal.Options{SyncEvery: 4, SyncInterval: time.Hour})
	for i := 0; i < 3; i++ {
		if err := w.Append(wal.Record{Type: 1, Payload: []byte{byte(i)}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got, _, _ := collect(t, f.Durable()); len(got) != 0 {
		t.Fatalf("durable records before the size boundary: %d, want 0", len(got))
	}
	if err := w.Append(wal.Record{Type: 1, Payload: []byte{3}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got, _, _ := collect(t, f.Durable()); len(got) != 4 {
		t.Fatalf("durable records after the size boundary: %d, want 4", len(got))
	}
	w.Close()
}

// TestGroupCommitInterval pins the other flush trigger: an under-filled
// batch reaches disk once the group-commit goroutine's interval elapses,
// with no explicit Sync.
func TestGroupCommitInterval(t *testing.T) {
	f := walfault.New(walfault.Plan{}, wal.Header())
	w := wal.NewWriter(f, wal.HeaderLen, wal.Options{SyncEvery: 1000, SyncInterval: 2 * time.Millisecond})
	defer w.Close()
	if err := w.Append(wal.Record{Type: 7, Payload: []byte("interval")}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got, _, _ := collect(t, f.Durable()); len(got) == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flush never made the record durable")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTornWriteRecovers crashes the log mid-frame (torn write at a byte
// boundary inside record 3) and pins recovery: replay of the survivor
// image delivers exactly the records fsynced before the tear, reports
// ErrTorn, and the good offset marks the intact prefix.
func TestTornWriteRecovers(t *testing.T) {
	// First, a clean run to learn the offsets of each frame.
	clean := walfault.New(walfault.Plan{}, wal.Header())
	w := wal.NewWriter(clean, wal.HeaderLen, wal.Options{SyncEvery: 1, SyncInterval: time.Hour})
	for i := 0; i < 4; i++ {
		if err := w.Append(wal.Record{Type: 1, Payload: []byte(fmt.Sprintf("record-%d", i))}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	w.Close()
	ends := wal.FrameEnds(clean.Durable())
	if len(ends) != 4 {
		t.Fatalf("FrameEnds: %d boundaries, want 4", len(ends))
	}

	// Now re-run with a torn write 3 bytes into record 2's frame.
	tearAt := ends[1] + 3
	f := walfault.New(walfault.Plan{FailWriteAtByte: tearAt, TornWrite: true}, wal.Header())
	w = wal.NewWriter(f, wal.HeaderLen, wal.Options{SyncEvery: 1, SyncInterval: time.Hour})
	var appendErr error
	for i := 0; i < 4; i++ {
		if err := w.Append(wal.Record{Type: 1, Payload: []byte(fmt.Sprintf("record-%d", i))}); err != nil {
			appendErr = err
			break
		}
	}
	if !errors.Is(appendErr, walfault.ErrInjected) {
		t.Fatalf("append past the tear = %v, want ErrInjected", appendErr)
	}
	// Sticky error: the writer refuses to interleave more frames.
	if err := w.Append(wal.Record{Type: 1, Payload: []byte("after")}); !errors.Is(err, walfault.ErrInjected) {
		t.Fatalf("append after fault = %v, want sticky ErrInjected", err)
	}
	w.Close()

	// The crash image: everything written, including the torn tail.
	img := f.Bytes()
	got, good, err := collect(t, img)
	if !errors.Is(err, wal.ErrTorn) {
		t.Fatalf("Replay of torn image: err = %v, want ErrTorn", err)
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d records from torn image, want 2", len(got))
	}
	if good != ends[1] {
		t.Fatalf("good offset %d, want %d (end of record 2)", good, ends[1])
	}
}

// TestShortFsyncLosesTail pins the durability boundary: records
// appended after the last successful fsync are lost to a crash — and
// only those. The third fsync fails (short fsync), so records 3+ never
// become durable even though the file image contains them.
func TestShortFsyncLosesTail(t *testing.T) {
	f := walfault.New(walfault.Plan{FailSyncAt: 3}, wal.Header())
	w := wal.NewWriter(f, wal.HeaderLen, wal.Options{SyncEvery: 1, SyncInterval: time.Hour})
	var lastErr error
	for i := 0; i < 5; i++ {
		if err := w.Append(wal.Record{Type: 1, Payload: []byte{byte(i)}}); err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, walfault.ErrInjected) {
		t.Fatalf("append through failing fsync = %v, want ErrInjected", lastErr)
	}
	w.Close()
	got, _, err := collect(t, f.Durable())
	if err != nil {
		t.Fatalf("Replay of durable image: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("durable records = %d, want 2 (fsyncs 1 and 2)", len(got))
	}
}

// TestReplayRejectsBadHeader pins that a non-WAL file is refused with
// ErrBadHeader rather than truncated into an "empty log".
func TestReplayRejectsBadHeader(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTWAL\x01\x00"),
		append([]byte("RCAWAL"), 0xFF, 0xFF), // wrong version
	} {
		if _, _, err := wal.Replay(data, func(wal.Record) error { return nil }); !errors.Is(err, wal.ErrBadHeader) {
			t.Fatalf("Replay(%q) err = %v, want ErrBadHeader", data, err)
		}
	}
}

// TestReplayCorruptLength pins the allocation guard: a frame whose
// length field is garbage (huge or zero) is a torn frame, not a panic
// or a giant allocation.
func TestReplayCorruptLength(t *testing.T) {
	data := wal.Header()
	data = append(data, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0) // length ~4G
	if _, good, err := wal.Replay(data, func(wal.Record) error { return nil }); !errors.Is(err, wal.ErrTorn) || good != wal.HeaderLen {
		t.Fatalf("huge length: good=%d err=%v, want %d/ErrTorn", good, err, wal.HeaderLen)
	}
	data = wal.Header()
	data = append(data, 0, 0, 0, 0, 0, 0, 0, 0) // length 0 (no type byte)
	if _, _, err := wal.Replay(data, func(wal.Record) error { return nil }); !errors.Is(err, wal.ErrTorn) {
		t.Fatalf("zero length: err = %v, want ErrTorn", err)
	}
}

// TestReplayBitFlip pins checksum enforcement: flipping any payload bit
// of the last frame turns it into a torn frame; earlier records still
// replay.
func TestReplayBitFlip(t *testing.T) {
	f := walfault.New(walfault.Plan{}, wal.Header())
	w := wal.NewWriter(f, wal.HeaderLen, wal.Options{SyncEvery: 1, SyncInterval: time.Hour})
	for i := 0; i < 3; i++ {
		if err := w.Append(wal.Record{Type: 1, Payload: []byte(fmt.Sprintf("payload-%d", i))}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	w.Close()
	img := f.Durable()
	img[len(img)-2] ^= 0x40
	got, good, err := collect(t, img)
	if !errors.Is(err, wal.ErrTorn) {
		t.Fatalf("bit-flipped image: err = %v, want ErrTorn", err)
	}
	if len(got) != 2 {
		t.Fatalf("bit-flipped image replayed %d records, want 2", len(got))
	}
	ends := wal.FrameEnds(img)
	if len(ends) != 2 || good != ends[1] {
		t.Fatalf("good = %d, FrameEnds = %v; want truncation at the second boundary", good, ends)
	}
}

// TestCreateOpenAtFiles exercises the real-file path: Create writes the
// header via temp+rename, OpenAt truncates a torn tail and appends
// after the intact prefix.
func TestCreateOpenAtFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := wal.Create(path, wal.Options{SyncEvery: 1, SyncInterval: time.Hour})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := w.Append(wal.Record{Type: 9, Payload: []byte("one")}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}

	// Simulate a crash that tore a half-frame onto the tail.
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fh.Write([]byte{0x05, 0x00})
	fh.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, good, rerr := collect(t, data)
	if !errors.Is(rerr, wal.ErrTorn) || len(recs) != 1 {
		t.Fatalf("torn file: %d records, err %v; want 1, ErrTorn", len(recs), rerr)
	}
	w, err = wal.OpenAt(path, good, wal.Options{SyncEvery: 1, SyncInterval: time.Hour})
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	if err := w.Append(wal.Record{Type: 9, Payload: []byte("two")}); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, rerr = collect(t, data)
	if rerr != nil || len(recs) != 2 {
		t.Fatalf("recovered file: %d records, err %v; want 2, nil", len(recs), rerr)
	}
	if string(recs[1].Payload) != "two" {
		t.Fatalf("recovered tail record = %q, want %q", recs[1].Payload, "two")
	}
}

// TestWriterRejectsOversizedPayload pins the MaxPayload append guard.
func TestWriterRejectsOversizedPayload(t *testing.T) {
	f := walfault.New(walfault.Plan{}, wal.Header())
	w := wal.NewWriter(f, wal.HeaderLen, wal.Options{SyncEvery: 1, SyncInterval: time.Hour})
	defer w.Close()
	if err := w.Append(wal.Record{Type: 1, Payload: make([]byte, wal.MaxPayload+1)}); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

// TestClosedWriterRefusesAppends pins ErrClosed and Close idempotency.
func TestClosedWriterRefusesAppends(t *testing.T) {
	f := walfault.New(walfault.Plan{}, wal.Header())
	w := wal.NewWriter(f, wal.HeaderLen, wal.Options{})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := w.Append(wal.Record{Type: 1}); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}
