package wal_test

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/wal"
	"repro/internal/wal/walfault"
)

// FuzzWALReplay is the recovery oracle for arbitrary log bytes: Replay
// must never panic, never allocate unboundedly off a corrupt length
// field, and never deliver a half-written record — every record it does
// deliver must be an intact frame whose checksum verified, and the
// reported good offset must itself replay cleanly to the same records
// (truncate-and-recover is a fixed point). Runs in CI's fuzz-smoke step
// alongside FuzzProbeEquivalence.
func FuzzWALReplay(f *testing.F) {
	// Seed with an empty log, a well-formed multi-record log, and
	// mutations a crash plausibly produces: truncated tails, flipped
	// bits, garbage appended past the last frame.
	f.Add(wal.Header())
	mem := walfault.New(walfault.Plan{}, wal.Header())
	w := wal.NewWriter(mem, wal.HeaderLen, wal.Options{SyncEvery: 1, SyncInterval: time.Hour})
	for i := 0; i < 5; i++ {
		w.Append(wal.Record{Type: byte(i % 3), Payload: bytes.Repeat([]byte{byte(i)}, i*7)})
	}
	w.Close()
	good := mem.Durable()
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add(append(append([]byte(nil), good...), 0xDE, 0xAD, 0xBE, 0xEF))
	flipped := append([]byte(nil), good...)
	flipped[wal.HeaderLen+5] ^= 0x10
	f.Add(flipped)
	huge := wal.Header()
	var lenField [8]byte
	binary.LittleEndian.PutUint32(lenField[0:4], 0x7FFFFFFF)
	f.Add(append(huge, lenField[:]...))
	f.Add([]byte("not a wal at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []wal.Record
		n, goodOff, err := wal.Replay(data, func(r wal.Record) error {
			if len(r.Payload) > wal.MaxPayload {
				t.Fatalf("delivered record exceeds MaxPayload: %d", len(r.Payload))
			}
			recs = append(recs, wal.Record{Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
			return nil
		})
		if n != len(recs) {
			t.Fatalf("reported %d records, delivered %d", n, len(recs))
		}
		if err != nil && goodOff > int64(len(data)) {
			t.Fatalf("good offset %d past input length %d", goodOff, len(data))
		}
		if err != nil {
			// Bad header: nothing delivered, nothing good.
			if goodOff == 0 && n != 0 {
				t.Fatalf("bad header but %d records delivered", n)
			}
			if goodOff == 0 {
				return
			}
		}
		// Truncate-and-recover must be a fixed point: replaying the good
		// prefix yields the same records with a clean end.
		var again []wal.Record
		n2, good2, err2 := wal.Replay(data[:goodOff], func(r wal.Record) error {
			again = append(again, wal.Record{Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
			return nil
		})
		if err2 != nil {
			t.Fatalf("replay of truncated prefix failed: %v", err2)
		}
		if n2 != n || good2 != goodOff {
			t.Fatalf("truncated prefix replayed %d records to offset %d, want %d to %d", n2, good2, n, goodOff)
		}
		for i := range recs {
			if recs[i].Type != again[i].Type || !bytes.Equal(recs[i].Payload, again[i].Payload) {
				t.Fatalf("record %d differs across truncate-and-recover", i)
			}
		}
	})
}
