// Package wal implements the append-only, group-committed write-ahead
// log under the vector store's durable layer (vectordb.OpenDurable).
//
// # Layout
//
// A log file is a fixed 8-byte header — the magic "RCAWAL" plus a
// little-endian uint16 format version — followed by a sequence of frames.
// Each frame is
//
//	uint32 LE  body length (record-type byte + payload)
//	uint32 LE  CRC32C (Castagnoli) of the body
//	byte       record type
//	payload    opaque to this package
//
// Record types and payload encodings belong to the caller; the log only
// guarantees that a frame delivered by Replay was written whole (length
// in range, checksum matches).
//
// # Group commit
//
// Writer.Append encodes the frame into an in-memory batch; the batch
// reaches the file — and an fsync — when it holds SyncEvery records
// (the appender that crosses the boundary pays for the flush, so a
// burst's records commit together) or when the group-commit goroutine's
// SyncInterval ticker finds records pending, mirroring the Batcher's
// flush-at-maxBatch-or-maxWait shape. The durability boundary is the
// fsync: records appended after the last successful Sync may be lost to
// a crash, which is exactly the prefix-consistency the replay contract
// promises (see Replay). Sync is the explicit barrier for callers that
// need a record durable now.
//
// # Recovery
//
// Replay walks the frames of a captured log image and stops cleanly at
// the first torn or corrupt frame, returning how many bytes were valid
// so the caller can truncate the file there and keep appending —
// recovery never fails open on a torn tail, and never delivers a
// half-written record.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Format constants. MaxPayload bounds a single record so a corrupt
// length field can never drive a multi-gigabyte allocation during
// replay.
const (
	// HeaderLen is the fixed log-file header size: 6 magic bytes plus a
	// little-endian uint16 version.
	HeaderLen = 8
	// frameOverhead is the per-frame framing cost: length + CRC32C.
	frameOverhead = 8
	// MaxPayload is the largest record payload Replay will accept.
	MaxPayload = 64 << 20

	magic   = "RCAWAL"
	version = 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn reports that replay stopped at a torn or corrupt frame; the
// records delivered before it are the committed prefix, and the caller
// truncates the log at the returned offset.
var ErrTorn = errors.New("wal: torn or corrupt frame")

// ErrBadHeader reports a log whose header is not this package's magic
// and version — the file is not a (compatible) WAL, so the caller must
// not append to it.
var ErrBadHeader = errors.New("wal: bad log header")

// ErrClosed reports an append to a closed writer.
var ErrClosed = errors.New("wal: writer closed")

// Record is one log entry: a caller-defined type byte and its payload.
type Record struct {
	Type    byte
	Payload []byte
}

// Header returns a fresh log-file header.
func Header() []byte {
	h := make([]byte, HeaderLen)
	copy(h, magic)
	binary.LittleEndian.PutUint16(h[len(magic):], version)
	return h
}

// checkHeader validates a full header prefix.
func checkHeader(data []byte) error {
	if len(data) < HeaderLen {
		return fmt.Errorf("%w: %d bytes, want %d", ErrBadHeader, len(data), HeaderLen)
	}
	if string(data[:len(magic)]) != magic {
		return fmt.Errorf("%w: magic %q", ErrBadHeader, data[:len(magic)])
	}
	if v := binary.LittleEndian.Uint16(data[len(magic):HeaderLen]); v != version {
		return fmt.Errorf("%w: version %d, want %d", ErrBadHeader, v, version)
	}
	return nil
}

// appendFrame encodes one record onto dst.
func appendFrame(dst []byte, r Record) []byte {
	body := make([]byte, 1+len(r.Payload))
	body[0] = r.Type
	copy(body[1:], r.Payload)
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// Replay walks the frames of a log image, invoking fn for each intact
// record in order. It returns the number of records delivered and the
// byte offset of the end of the last intact frame (HeaderLen for an
// empty-but-valid log) — the position the caller truncates to and
// appends from.
//
// A torn or corrupt frame (short frame, out-of-range length, checksum
// mismatch) ends replay with ErrTorn: the delivered prefix stands, and
// the bad tail is for the caller to truncate — recovery truncates
// rather than failing open. An invalid header is ErrBadHeader (the file
// is not a compatible log at all). An error from fn stops replay and is
// returned verbatim. Replay never panics on arbitrary input and never
// delivers a partially written record — the FuzzWALReplay contract.
func Replay(data []byte, fn func(Record) error) (records int, good int64, err error) {
	if err := checkHeader(data); err != nil {
		return 0, 0, err
	}
	off := int64(HeaderLen)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < frameOverhead {
			return records, off, fmt.Errorf("%w: %d-byte frame header at offset %d", ErrTorn, len(rest), off)
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		if n < 1 || n > MaxPayload+1 {
			return records, off, fmt.Errorf("%w: body length %d at offset %d", ErrTorn, n, off)
		}
		if int64(len(rest)) < frameOverhead+int64(n) {
			return records, off, fmt.Errorf("%w: %d of %d body bytes at offset %d", ErrTorn, len(rest)-frameOverhead, n, off)
		}
		body := rest[frameOverhead : frameOverhead+int64(n)]
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			return records, off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrTorn, off)
		}
		if err := fn(Record{Type: body[0], Payload: body[1:]}); err != nil {
			return records, off, err
		}
		records++
		off += frameOverhead + int64(n)
	}
	return records, off, nil
}

// FrameEnds returns the end offset of every intact frame in a log
// image, in order — the crash matrix a recovery test truncates the log
// at, one boundary per committed record. An invalid header yields nil.
func FrameEnds(data []byte) []int64 {
	if checkHeader(data) != nil {
		return nil
	}
	var ends []int64
	off := int64(HeaderLen)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < frameOverhead {
			break
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		if n < 1 || n > MaxPayload+1 || int64(len(rest)) < frameOverhead+int64(n) {
			break
		}
		body := rest[frameOverhead : frameOverhead+int64(n)]
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			break
		}
		off += frameOverhead + int64(n)
		ends = append(ends, off)
	}
	return ends
}

// File is the minimal surface the writer appends through: an *os.File,
// or a walfault wrapper injecting crash faults in tests.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// Options parameterizes a Writer's group commit.
type Options struct {
	// SyncEvery is the batch size that forces a flush+fsync from the
	// appending goroutine itself. Default 64; 1 makes every append
	// durable before it returns.
	SyncEvery int
	// SyncInterval is the group-commit goroutine's flush cadence for
	// under-filled batches. Default 50ms.
	SyncInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 50 * time.Millisecond
	}
	return o
}

// Writer is the group-committed appender over one log file. Safe for
// concurrent use. Errors are sticky: once a write or fsync fails the
// log's on-disk tail is unknown, so every later Append and Sync returns
// the first error rather than interleaving more frames after garbage
// (replay will truncate at the torn point).
type Writer struct {
	opts Options

	mu      sync.Mutex
	f       File
	pending []byte // encoded frames awaiting flush
	batch   int    // records in pending
	err     error  // sticky first write/sync error
	closed  bool

	appended atomic.Int64 // records accepted into the batch
	synced   atomic.Int64 // records on disk past an fsync
	bytes    atomic.Int64 // durable log size, header included

	stop chan struct{}
	done chan struct{}
}

// NewWriter wraps an open log file positioned for appending at offset
// (its current durable size, header included) and starts the
// group-commit goroutine. The caller is responsible for the header
// already being on disk; Create and OpenAt handle that for real files.
func NewWriter(f File, offset int64, opts Options) *Writer {
	w := &Writer{
		opts: opts.withDefaults(),
		f:    f,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	w.bytes.Store(offset)
	go w.commitLoop()
	return w
}

// Create writes a fresh, empty log at path atomically — header to a
// temp file, fsync, rename — and returns its appender. An existing log
// at path is replaced wholesale, which is exactly the compaction
// rotation step: the snapshot that made the old log redundant is
// already durable when Create runs.
func Create(path string, opts Options) (*Writer, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	if _, err := f.Write(Header()); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	syncDir(filepath.Dir(path))
	// The fd survives the rename (same inode), so keep appending through it.
	return NewWriter(f, HeaderLen, opts), nil
}

// OpenAt truncates the log at path to offset — the intact prefix a
// Replay of its contents reported — and returns an appender positioned
// there. This is the open-for-append half of crash recovery: the torn
// tail is discarded before any new frame lands.
func OpenAt(path string, offset int64, opts Options) (*Writer, error) {
	if offset < HeaderLen {
		return nil, fmt.Errorf("wal: open: offset %d inside the header", offset)
	}
	if err := os.Truncate(path, offset); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	return NewWriter(f, offset, opts), nil
}

// syncDir fsyncs a directory so a rename in it is durable; best effort
// (some filesystems reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Append adds one record to the in-memory batch. It returns once the
// record is batched — durable only after the next group commit — except
// when this append fills the batch to SyncEvery, in which case the
// caller pays for the flush and the whole batch is durable on return.
func (w *Writer) Append(r Record) error {
	if len(r.Payload) > MaxPayload {
		return fmt.Errorf("wal: record payload %d bytes exceeds MaxPayload %d", len(r.Payload), MaxPayload)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	w.pending = appendFrame(w.pending, r)
	w.batch++
	w.appended.Add(1)
	if w.batch >= w.opts.SyncEvery {
		return w.flushLocked()
	}
	return nil
}

// Sync flushes and fsyncs any batched records — the explicit durability
// barrier. A no-op on an empty batch.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.flushLocked()
}

// flushLocked writes the batch and fsyncs. Called with w.mu held; the
// group commit is the point — every appender blocked on the mutex has
// its record in this batch or the next.
func (w *Writer) flushLocked() error {
	if w.batch == 0 {
		return nil
	}
	n, batch := len(w.pending), w.batch
	if _, err := w.f.Write(w.pending); err != nil {
		w.err = fmt.Errorf("wal: append: %w", err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("wal: fsync: %w", err)
		return w.err
	}
	w.pending = w.pending[:0]
	w.batch = 0
	w.synced.Add(int64(batch))
	w.bytes.Add(int64(n))
	return nil
}

// commitLoop is the group-commit goroutine: every SyncInterval it
// flushes whatever records the size boundary has not already committed.
func (w *Writer) commitLoop() {
	defer close(w.done)
	ticker := time.NewTicker(w.opts.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			w.mu.Lock()
			if w.err == nil {
				_ = w.flushLocked()
			}
			w.mu.Unlock()
		}
	}
}

// Close flushes the batch, stops the group-commit goroutine and closes
// the file. The flush error (if any) is returned; the file is closed
// regardless.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	var err error
	if w.err == nil {
		err = w.flushLocked()
	} else {
		err = w.err
	}
	f := w.f
	w.mu.Unlock()
	close(w.stop)
	<-w.done
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	return err
}

// Err returns the sticky write/fsync error, nil while the log is healthy.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Appended returns how many records Append has accepted.
func (w *Writer) Appended() int64 { return w.appended.Load() }

// Synced returns how many records an fsync has made durable.
func (w *Writer) Synced() int64 { return w.synced.Load() }

// Bytes returns the durable log size in bytes, header included.
func (w *Writer) Bytes() int64 { return w.bytes.Load() }
