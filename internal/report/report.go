// Package report renders the incident notification RCACopilot sends to
// on-call engineers: the alert, the handler's collection trail, the
// summarized diagnostics, the predicted root-cause category with its
// explanation, suggested mitigations, and the feedback instructions the
// paper's deployment attaches ("we have incorporated a feedback mechanism
// in incident notification emails", §5.5).
package report

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/feedback"
	"repro/internal/handler"
	"repro/internal/incident"
)

// Options tune rendering.
type Options struct {
	// MaxEvidenceLines bounds the raw-evidence excerpt per source
	// (default 4; 0 keeps the default, negative hides raw evidence).
	MaxEvidenceLines int
	// FeedbackAddress is printed in the feedback footer.
	FeedbackAddress string
}

func (o Options) withDefaults() Options {
	if o.MaxEvidenceLines == 0 {
		o.MaxEvidenceLines = 4
	}
	if o.FeedbackAddress == "" {
		o.FeedbackAddress = "rcacopilot-feedback@transport"
	}
	return o
}

// Render produces the plain-text notification for a fully handled incident.
// The report is self-contained: an OCE reading only this text knows what
// fired, what was collected, what the system concluded and why, and how to
// respond.
func Render(inc *incident.Incident, rep *handler.RunReport, opts Options) string {
	opts = opts.withDefaults()
	var b strings.Builder

	fmt.Fprintf(&b, "INCIDENT %s  [%s]  %s\n", inc.ID, inc.Severity, inc.CreatedAt.Format("2006-01-02 15:04 MST"))
	fmt.Fprintf(&b, "%s\n", strings.Repeat("=", 72))
	fmt.Fprintf(&b, "Title:  %s\n", inc.Title)
	fmt.Fprintf(&b, "Team:   %s", inc.OwningTeam)
	if inc.OwningTenant != "" {
		fmt.Fprintf(&b, "    Tenant: %s", inc.OwningTenant)
	}
	b.WriteString("\n\n")

	b.WriteString("ALERT\n")
	fmt.Fprintf(&b, "  type=%s scope=%s monitor=%s target=%s\n",
		inc.Alert.Type, inc.Alert.Scope, inc.Alert.Monitor, inc.Alert.Target)
	fmt.Fprintf(&b, "  %s\n\n", inc.Alert.Message)

	if rep != nil {
		fmt.Fprintf(&b, "DIAGNOSTIC COLLECTION (handler %q, modelled cost %s)\n", rep.Handler, rep.VirtualCost)
		for _, s := range rep.Steps {
			fmt.Fprintf(&b, "  %-30s %-12s -> %s\n", s.Label, "["+s.Kind+"]", s.Outcome)
		}
		b.WriteString("\n")
	}

	if opts.MaxEvidenceLines > 0 && len(inc.Evidence) > 0 {
		b.WriteString("EVIDENCE (excerpts)\n")
		for _, ev := range inc.Evidence {
			fmt.Fprintf(&b, "  --- %s/%s ---\n", ev.Kind, ev.Source)
			for i, line := range strings.Split(strings.TrimSpace(ev.Body), "\n") {
				if i >= opts.MaxEvidenceLines {
					fmt.Fprintf(&b, "    … (%d more lines)\n", strings.Count(ev.Body, "\n")+1-i)
					break
				}
				fmt.Fprintf(&b, "    %s\n", line)
			}
		}
		b.WriteString("\n")
	}

	if inc.Summary != "" {
		b.WriteString("SUMMARIZED DIAGNOSTIC INFORMATION\n")
		b.WriteString(indentWrap(inc.Summary, 70, "  "))
		b.WriteString("\n\n")
	}

	if inc.Predicted != "" {
		b.WriteString("ROOT CAUSE PREDICTION\n")
		fmt.Fprintf(&b, "  category: %s\n", inc.Predicted)
		if inc.Explanation != "" {
			b.WriteString("  explanation:\n")
			b.WriteString(indentWrap(inc.Explanation, 66, "    "))
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}

	if rep != nil && len(rep.Mitigations) > 0 {
		b.WriteString("SUGGESTED MITIGATIONS\n")
		for _, m := range rep.Mitigations {
			fmt.Fprintf(&b, "  * %s\n", m)
		}
		b.WriteString("\n")
	}

	b.WriteString("FEEDBACK\n")
	fmt.Fprintf(&b, "  Reply to %s with one of:\n", opts.FeedbackAddress)
	fmt.Fprintf(&b, "    confirm %s\n", inc.ID)
	fmt.Fprintf(&b, "    correct %s <category>\n", inc.ID)
	fmt.Fprintf(&b, "    reject  %s\n", inc.ID)
	return b.String()
}

// RenderLearnFailure produces the plain-text notification sent to the OCE
// whose feedback verdict could not be learned back into the incident
// history (the background ingest worker failed to re-summarize or embed
// the incident). Without this message the error would only surface to
// whoever next calls the feedback loop's Flush — which may be nobody. The
// text tells the reviewer what failed, why, and that their verdict itself
// is safely recorded; resubmitting after the underlying fault clears
// re-queues the learn.
func RenderLearnFailure(incidentID, reviewer string, learnErr error, at time.Time, opts Options) string {
	opts = opts.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "FEEDBACK LEARN FAILURE %s  %s\n", incidentID, at.Format("2006-01-02 15:04 MST"))
	fmt.Fprintf(&b, "%s\n", strings.Repeat("=", 72))
	fmt.Fprintf(&b, "To:     %s\n", reviewer)
	fmt.Fprintf(&b, "Your verdict on incident %s was recorded, but feeding it back\n", incidentID)
	b.WriteString("into the incident history failed — the incident will NOT inform\n")
	b.WriteString("future predictions until the learn succeeds.\n\n")
	b.WriteString("ERROR\n")
	b.WriteString(indentWrap(learnErr.Error(), 66, "  "))
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "Resubmit your verdict to %s once the fault clears:\n", opts.FeedbackAddress)
	fmt.Fprintf(&b, "    confirm %s\n", incidentID)
	return b.String()
}

// RenderRetryQueue renders the feedback loop's self-heal schedule: every
// unresolved learn failure with its attempt count and next redrive time —
// the dashboard view that sits next to the Failure list, so an OCE sees
// not just that a learn is failing but when the system will try again (or
// that it has given up and needs a resubmitted verdict). now anchors the
// "due in" column; pass the loop's clock reading.
func RenderRetryQueue(now time.Time, items []feedback.RetryItem, opts Options) string {
	opts = opts.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "LEARN RETRY QUEUE  %s\n", now.Format("2006-01-02 15:04 MST"))
	fmt.Fprintf(&b, "%s\n", strings.Repeat("=", 72))
	if len(items) == 0 {
		b.WriteString("  (no unresolved learn failures)\n")
		return b.String()
	}
	for _, it := range items {
		fmt.Fprintf(&b, "%s  reviewer=%s  attempts=%d\n", it.IncidentID, it.Reviewer, it.Attempts)
		switch {
		case it.Exhausted:
			fmt.Fprintf(&b, "  EXHAUSTED — resubmit the verdict to %s to requeue\n", opts.FeedbackAddress)
		case it.NextDue.IsZero():
			b.WriteString("  not scheduled (retry queue off)\n")
		case it.NextDue.After(now):
			fmt.Fprintf(&b, "  next redrive %s (in %s)\n",
				it.NextDue.Format("2006-01-02 15:04:05 MST"), it.NextDue.Sub(now).Round(time.Second))
		default:
			fmt.Fprintf(&b, "  next redrive %s (due now)\n", it.NextDue.Format("2006-01-02 15:04:05 MST"))
		}
		if it.Err != nil {
			b.WriteString(indentWrap("error: "+it.Err.Error(), 66, "  "))
			b.WriteString("\n")
		}
	}
	return b.String()
}

// indentWrap wraps text at width and prefixes every line.
func indentWrap(s string, width int, prefix string) string {
	words := strings.Fields(s)
	var b strings.Builder
	line := 0
	b.WriteString(prefix)
	for _, w := range words {
		if line+len(w)+1 > width && line > 0 {
			b.WriteString("\n" + prefix)
			line = 0
		} else if line > 0 {
			b.WriteString(" ")
			line++
		}
		b.WriteString(w)
		line += len(w)
	}
	return b.String()
}

// ParseFeedbackCommand parses an OCE reply line ("confirm INC-1",
// "correct INC-1 DiskFull", "reject INC-1") into its parts.
func ParseFeedbackCommand(line string) (verb, incidentID string, category incident.Category, err error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 2 {
		return "", "", "", fmt.Errorf("report: feedback command needs a verb and incident ID: %q", line)
	}
	verb = strings.ToLower(fields[0])
	incidentID = fields[1]
	switch verb {
	case "confirm", "reject":
		if len(fields) != 2 {
			return "", "", "", fmt.Errorf("report: %s takes no category: %q", verb, line)
		}
	case "correct":
		if len(fields) != 3 {
			return "", "", "", fmt.Errorf("report: correct needs a category: %q", line)
		}
		category = incident.Category(fields[2])
	default:
		return "", "", "", fmt.Errorf("report: unknown feedback verb %q", verb)
	}
	return verb, incidentID, category, nil
}
