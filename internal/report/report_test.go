package report

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/feedback"
	"repro/internal/handler"
	"repro/internal/incident"
)

func handledIncident() (*incident.Incident, *handler.RunReport) {
	inc := &incident.Incident{
		ID: "INC-42", Title: "too many messages stuck in the delivery queue",
		OwningTeam: "Transport", OwningTenant: "contoso",
		Severity: incident.Sev2,
		Alert: incident.Alert{
			Type: "MessagesStuckInDeliveryQueue", Scope: incident.ScopeForest,
			Monitor: "DeliveryQueueMonitor", Target: "NAMPR01A",
			Message: "delivery queue depth 10861 beyond limit",
		},
		CreatedAt:   time.Date(2022, 11, 21, 2, 4, 0, 0, time.UTC),
		Summary:     "Delivery queue exceeded the limit with blocked threads in the delivery agent.",
		Predicted:   "DeliveryHang",
		Explanation: "both incidents exhibit blocked delivery threads.",
	}
	inc.AddEvidence("queue-metrics", incident.SourceMetric,
		"line1\nline2\nline3\nline4\nline5\nline6", inc.CreatedAt)
	rep := &handler.RunReport{
		Handler: "delivery-queue-stuck",
		Steps: []handler.Step{
			{NodeID: "known", Label: "Known Issue?", Kind: handler.KindQuery, Outcome: handler.OutcomeFalse},
			{NodeID: "restart", Label: "Restart Service", Kind: handler.KindMitigation, Outcome: handler.OutcomeDefault},
		},
		Mitigations: []string{"restart the mailbox delivery service"},
		VirtualCost: 12 * time.Second,
	}
	return inc, rep
}

func TestRenderContainsAllSections(t *testing.T) {
	inc, rep := handledIncident()
	out := Render(inc, rep, Options{})
	for _, want := range []string{
		"INCIDENT INC-42", "Sev2",
		"ALERT", "MessagesStuckInDeliveryQueue",
		"DIAGNOSTIC COLLECTION", "delivery-queue-stuck", "Known Issue?",
		"EVIDENCE", "queue-metrics",
		"SUMMARIZED DIAGNOSTIC INFORMATION", "blocked threads",
		"ROOT CAUSE PREDICTION", "DeliveryHang",
		"SUGGESTED MITIGATIONS", "restart the mailbox delivery service",
		"FEEDBACK", "confirm INC-42", "correct INC-42 <category>", "reject  INC-42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTruncatesEvidence(t *testing.T) {
	inc, rep := handledIncident()
	out := Render(inc, rep, Options{MaxEvidenceLines: 2})
	if strings.Contains(out, "line3") {
		t.Error("evidence should be truncated at 2 lines")
	}
	if !strings.Contains(out, "more lines") {
		t.Error("truncation marker missing")
	}
}

func TestRenderHidesEvidenceWhenNegative(t *testing.T) {
	inc, rep := handledIncident()
	out := Render(inc, rep, Options{MaxEvidenceLines: -1})
	if strings.Contains(out, "EVIDENCE") {
		t.Error("negative MaxEvidenceLines should hide raw evidence")
	}
}

func TestRenderWithoutPredictionOrReport(t *testing.T) {
	inc, _ := handledIncident()
	inc.Predicted = ""
	inc.Summary = ""
	out := Render(inc, nil, Options{})
	if strings.Contains(out, "ROOT CAUSE PREDICTION") || strings.Contains(out, "DIAGNOSTIC COLLECTION") {
		t.Error("sections for absent data should be omitted")
	}
	if !strings.Contains(out, "ALERT") {
		t.Error("alert section must always render")
	}
}

func TestRenderCustomFeedbackAddress(t *testing.T) {
	inc, rep := handledIncident()
	out := Render(inc, rep, Options{FeedbackAddress: "oncall@example"})
	if !strings.Contains(out, "oncall@example") {
		t.Error("custom feedback address not rendered")
	}
}

func TestParseFeedbackCommand(t *testing.T) {
	verb, id, cat, err := ParseFeedbackCommand("  confirm INC-42 ")
	if err != nil || verb != "confirm" || id != "INC-42" || cat != "" {
		t.Fatalf("confirm parse: %s %s %s %v", verb, id, cat, err)
	}
	verb, id, cat, err = ParseFeedbackCommand("correct INC-42 DiskFull")
	if err != nil || verb != "correct" || cat != "DiskFull" {
		t.Fatalf("correct parse: %s %s %s %v", verb, id, cat, err)
	}
	if _, _, _, err := ParseFeedbackCommand("reject INC-42"); err != nil {
		t.Fatalf("reject parse: %v", err)
	}
	for _, bad := range []string{
		"", "confirm", "correct INC-42", "confirm INC-42 extra",
		"promote INC-42", "reject INC-42 Cat",
	} {
		if _, _, _, err := ParseFeedbackCommand(bad); err == nil {
			t.Errorf("ParseFeedbackCommand(%q) should fail", bad)
		}
	}
}

func TestRenderRetryQueue(t *testing.T) {
	now := time.Date(2022, 11, 21, 12, 0, 0, 0, time.UTC)
	items := []feedback.RetryItem{
		{
			IncidentID: "INC-1", Reviewer: "oce-a", Attempts: 2,
			NextDue: now.Add(90 * time.Second),
			Err:     errors.New("embedder unavailable"),
			At:      now.Add(-time.Minute),
		},
		{
			IncidentID: "INC-2", Reviewer: "oce-b", Attempts: 8, Exhausted: true,
			Err: errors.New("dimension mismatch"), At: now.Add(-time.Hour),
		},
		{
			IncidentID: "INC-3", Reviewer: "oce-c", Attempts: 1,
			NextDue: now.Add(-time.Second), At: now.Add(-time.Minute),
		},
		{IncidentID: "INC-4", Reviewer: "oce-d", At: now},
	}
	out := RenderRetryQueue(now, items, Options{})
	for _, want := range []string{
		"LEARN RETRY QUEUE",
		"INC-1  reviewer=oce-a  attempts=2",
		"next redrive 2022-11-21 12:01:30 UTC (in 1m30s)",
		"error: embedder unavailable",
		"EXHAUSTED — resubmit the verdict",
		"(due now)",
		"not scheduled (retry queue off)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}

	empty := RenderRetryQueue(now, nil, Options{})
	if !strings.Contains(empty, "no unresolved learn failures") {
		t.Fatalf("empty rendering:\n%s", empty)
	}
}
