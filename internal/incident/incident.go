// Package incident defines the core data model shared by every stage of
// RCACopilot: alerts raised by monitors, the incidents created from them,
// the diagnostic evidence gathered by incident handlers, and the root-cause
// category labels assigned by on-call engineers.
//
// The model mirrors the fields the paper's architecture diagram (Figure 4)
// threads through the system: an incoming incident carries a title, owning
// tenant/team and ID; the collection stage attaches multi-source diagnostic
// information; the prediction stage attaches a summary, a predicted category
// and an explanation.
package incident

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Severity is the incident severity level. Severity 1 is the most severe
// (outage-level); severity 4 is informational.
type Severity int

// Severity levels used by the Transport service in the paper (Table 1 lists
// severity 1-3 incidents).
const (
	Sev1 Severity = 1 + iota
	Sev2
	Sev3
	Sev4
)

// String returns the conventional "Sev<n>" rendering.
func (s Severity) String() string { return fmt.Sprintf("Sev%d", int(s)) }

// Valid reports whether s is one of the defined severity levels.
func (s Severity) Valid() bool { return s >= Sev1 && s <= Sev4 }

// Scope describes the blast radius of an alert or investigation. Scope
// switching actions in incident handlers move between these levels.
type Scope string

// Scopes from the paper: a single machine, a forest (a cluster of servers
// serving a set of tenants), a region of forests, or the whole service.
const (
	ScopeMachine Scope = "Machine"
	ScopeForest  Scope = "Forest"
	ScopeRegion  Scope = "Region"
	ScopeService Scope = "Service"
)

// Narrower reports whether s is strictly narrower than t
// (Machine < Forest < Region < Service).
func (s Scope) Narrower(t Scope) bool { return scopeRank(s) < scopeRank(t) }

func scopeRank(s Scope) int {
	switch s {
	case ScopeMachine:
		return 0
	case ScopeForest:
		return 1
	case ScopeRegion:
		return 2
	case ScopeService:
		return 3
	default:
		return -1
	}
}

// Valid reports whether s is one of the defined scopes.
func (s Scope) Valid() bool { return scopeRank(s) >= 0 }

// Category is a root-cause category label, e.g. "HubPortExhaustion".
// Categories are assigned by experienced OCEs after investigation and form
// the ground truth for the prediction stage.
type Category string

// Unseen is the reserved pseudo-category the predictor answers when it
// believes no historical incident shares the current root cause (option A in
// the paper's Figure 9 prompt).
const Unseen Category = "Unseen"

// AlertType identifies the monitor-defined anomaly class of an alert, e.g.
// "MessagesStuckInDeliveryQueue". Incidents sharing an alert type exhibit
// similar symptoms but may stem from different root causes; each alert type
// is matched to one incident handler.
type AlertType string

// Alert is the monitor signal that opens an incident.
type Alert struct {
	Type     AlertType `json:"type"`
	Scope    Scope     `json:"scope"`
	Monitor  string    `json:"monitor"`          // monitor/watchdog that fired
	Target   string    `json:"target"`           // machine or forest identifier
	Forest   string    `json:"forest,omitempty"` // owning forest when Target is a machine
	Message  string    `json:"message"`          // alert text shown to OCEs
	RaisedAt time.Time `json:"raisedAt"`
}

// Info renders the alert metadata block ("AlertInfo" in the paper's Table 3
// ablation): the pre-defined anomaly description and the alert scope.
func (a Alert) Info() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AlertType: %s\n", a.Type)
	fmt.Fprintf(&b, "AlertScope: %s\n", a.Scope)
	fmt.Fprintf(&b, "Monitor: %s\n", a.Monitor)
	fmt.Fprintf(&b, "Target: %s\n", a.Target)
	fmt.Fprintf(&b, "Message: %s\n", a.Message)
	return b.String()
}

// SourceKind classifies a diagnostic data source along the paper's
// multi-source spectrum.
type SourceKind string

// Diagnostic source kinds collected by handler query actions.
const (
	SourceLog    SourceKind = "log"    // semi-structured event text
	SourceMetric SourceKind = "metric" // time-series / counter snapshots
	SourceTrace  SourceKind = "trace"  // request-flow records
	SourceStack  SourceKind = "stack"  // exception or thread stacks
	SourceConfig SourceKind = "config" // configuration snapshots
	SourceProbe  SourceKind = "probe"  // synthetic-probe results
)

// Evidence is one piece of diagnostic information collected from one source
// by a handler action.
type Evidence struct {
	Source    string     `json:"source"` // e.g. "DatacenterHubOutboundProxyProbe"
	Kind      SourceKind `json:"kind"`
	Body      string     `json:"body"`
	Collected time.Time  `json:"collected"`
}

// Incident is a service-disrupting event moving through the RCACopilot
// pipeline. Fields are populated progressively: creation metadata by the
// monitor, Evidence and ActionOutput by the collection stage, Summary /
// Predicted / Explanation by the prediction stage, and Category by OCEs
// post-investigation (ground truth).
type Incident struct {
	ID           string   `json:"id"`
	Title        string   `json:"title"`
	OwningTeam   string   `json:"owningTeam"`
	OwningTenant string   `json:"owningTenant"`
	Severity     Severity `json:"severity"`
	Alert        Alert    `json:"alert"`

	CreatedAt time.Time `json:"createdAt"`

	// Collection-stage outputs.
	Evidence     []Evidence        `json:"evidence,omitempty"`
	ActionOutput map[string]string `json:"actionOutput,omitempty"`

	// Prediction-stage outputs.
	Summary     string   `json:"summary,omitempty"`
	Predicted   Category `json:"predicted,omitempty"`
	Explanation string   `json:"explanation,omitempty"`

	// Ground truth assigned by OCEs after investigation.
	Category Category `json:"category,omitempty"`
}

// Validate reports the first structural problem with the incident, or nil.
func (in *Incident) Validate() error {
	switch {
	case in.ID == "":
		return fmt.Errorf("incident: missing ID")
	case in.Title == "":
		return fmt.Errorf("incident %s: missing title", in.ID)
	case !in.Severity.Valid():
		return fmt.Errorf("incident %s: invalid severity %d", in.ID, int(in.Severity))
	case in.Alert.Type == "":
		return fmt.Errorf("incident %s: missing alert type", in.ID)
	case !in.Alert.Scope.Valid():
		return fmt.Errorf("incident %s: invalid alert scope %q", in.ID, in.Alert.Scope)
	case in.CreatedAt.IsZero():
		return fmt.Errorf("incident %s: missing creation time", in.ID)
	}
	return nil
}

// AddEvidence appends one piece of diagnostic information.
func (in *Incident) AddEvidence(source string, kind SourceKind, body string, at time.Time) {
	in.Evidence = append(in.Evidence, Evidence{Source: source, Kind: kind, Body: body, Collected: at})
}

// SetActionOutput records the key-value output of an executed handler
// action ("ActionOutput" in the paper's Table 3 ablation).
func (in *Incident) SetActionOutput(key, value string) {
	if in.ActionOutput == nil {
		in.ActionOutput = make(map[string]string)
	}
	in.ActionOutput[key] = value
}

// DiagnosticText renders all collected evidence as one document, in
// collection order, separated by source headers. This is the
// "DiagnosticInfo" context of the paper's Table 3 and the input to
// summarization (Figure 6 shows an example for hub port exhaustion).
func (in *Incident) DiagnosticText() string {
	var b strings.Builder
	for i, ev := range in.Evidence {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "[%s/%s]\n%s\n", ev.Kind, ev.Source, strings.TrimRight(ev.Body, "\n"))
	}
	return b.String()
}

// ActionOutputText renders the action outputs as sorted key-value lines so
// the rendering is deterministic.
func (in *Incident) ActionOutputText() string {
	if len(in.ActionOutput) == 0 {
		return ""
	}
	keys := make([]string, 0, len(in.ActionOutput))
	for k := range in.ActionOutput {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\n", k, in.ActionOutput[k])
	}
	return b.String()
}

// Clone returns a deep copy of the incident.
func (in *Incident) Clone() *Incident {
	out := *in
	out.Evidence = append([]Evidence(nil), in.Evidence...)
	if in.ActionOutput != nil {
		out.ActionOutput = make(map[string]string, len(in.ActionOutput))
		for k, v := range in.ActionOutput {
			out.ActionOutput[k] = v
		}
	}
	return &out
}

// MarshalJSONIndent renders the incident as indented JSON.
func (in *Incident) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(in, "", "  ")
}

// Decode parses an incident from JSON produced by encoding/json.
func Decode(data []byte) (*Incident, error) {
	var in Incident
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("incident: decode: %w", err)
	}
	return &in, nil
}
