package incident

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sample(t *testing.T) *Incident {
	t.Helper()
	return &Incident{
		ID:           "INC-0001",
		Title:        "Messages stuck in delivery queue",
		OwningTeam:   "Transport",
		OwningTenant: "contoso",
		Severity:     Sev2,
		Alert: Alert{
			Type:     "MessagesStuckInDeliveryQueue",
			Scope:    ScopeForest,
			Monitor:  "DeliveryQueueMonitor",
			Target:   "forest-07",
			Message:  "Normal priority messages queued beyond threshold",
			RaisedAt: time.Date(2022, 11, 21, 2, 4, 20, 0, time.UTC),
		},
		CreatedAt: time.Date(2022, 11, 21, 2, 5, 0, 0, time.UTC),
		Category:  "DeliveryHang",
	}
}

func TestValidateOK(t *testing.T) {
	if err := sample(t).Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateRejectsEachMissingField(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Incident)
	}{
		{"missing id", func(in *Incident) { in.ID = "" }},
		{"missing title", func(in *Incident) { in.Title = "" }},
		{"invalid severity low", func(in *Incident) { in.Severity = 0 }},
		{"invalid severity high", func(in *Incident) { in.Severity = 9 }},
		{"missing alert type", func(in *Incident) { in.Alert.Type = "" }},
		{"invalid scope", func(in *Incident) { in.Alert.Scope = "Galaxy" }},
		{"missing created", func(in *Incident) { in.CreatedAt = time.Time{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := sample(t)
			tc.mutate(in)
			if err := in.Validate(); err == nil {
				t.Fatalf("Validate() = nil, want error")
			}
		})
	}
}

func TestSeverityString(t *testing.T) {
	if got := Sev1.String(); got != "Sev1" {
		t.Fatalf("Sev1.String() = %q, want Sev1", got)
	}
	if got := Sev3.String(); got != "Sev3" {
		t.Fatalf("Sev3.String() = %q, want Sev3", got)
	}
}

func TestScopeOrdering(t *testing.T) {
	if !ScopeMachine.Narrower(ScopeForest) {
		t.Error("Machine should be narrower than Forest")
	}
	if !ScopeForest.Narrower(ScopeRegion) {
		t.Error("Forest should be narrower than Region")
	}
	if !ScopeRegion.Narrower(ScopeService) {
		t.Error("Region should be narrower than Service")
	}
	if ScopeService.Narrower(ScopeMachine) {
		t.Error("Service should not be narrower than Machine")
	}
	if ScopeForest.Narrower(ScopeForest) {
		t.Error("a scope is not narrower than itself")
	}
}

func TestScopeValid(t *testing.T) {
	for _, s := range []Scope{ScopeMachine, ScopeForest, ScopeRegion, ScopeService} {
		if !s.Valid() {
			t.Errorf("%q should be valid", s)
		}
	}
	if Scope("Planet").Valid() {
		t.Error("unknown scope should be invalid")
	}
}

func TestAddEvidenceAndDiagnosticText(t *testing.T) {
	in := sample(t)
	at := in.CreatedAt
	in.AddEvidence("ProbeLog", SourceProbe, "Total Probes: 2, Failed Probes: 2", at)
	in.AddEvidence("SocketMetrics", SourceMetric, "Total UDP socket count: 15276", at)

	text := in.DiagnosticText()
	for _, want := range []string{
		"[probe/ProbeLog]", "Failed Probes: 2",
		"[metric/SocketMetrics]", "15276",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("DiagnosticText missing %q in:\n%s", want, text)
		}
	}
	// Order must follow collection order.
	if strings.Index(text, "ProbeLog") > strings.Index(text, "SocketMetrics") {
		t.Error("evidence should render in collection order")
	}
}

func TestDiagnosticTextEmpty(t *testing.T) {
	in := sample(t)
	if got := in.DiagnosticText(); got != "" {
		t.Fatalf("DiagnosticText() on empty evidence = %q, want empty", got)
	}
}

func TestActionOutputTextSortedAndDeterministic(t *testing.T) {
	in := sample(t)
	in.SetActionOutput("zeta", "1")
	in.SetActionOutput("alpha", "2")
	in.SetActionOutput("mid", "3")
	want := "alpha: 2\nmid: 3\nzeta: 1\n"
	for i := 0; i < 10; i++ {
		if got := in.ActionOutputText(); got != want {
			t.Fatalf("ActionOutputText() = %q, want %q", got, want)
		}
	}
}

func TestActionOutputTextEmpty(t *testing.T) {
	in := sample(t)
	if got := in.ActionOutputText(); got != "" {
		t.Fatalf("ActionOutputText() = %q, want empty", got)
	}
}

func TestAlertInfoContainsFields(t *testing.T) {
	in := sample(t)
	info := in.Alert.Info()
	for _, want := range []string{
		"AlertType: MessagesStuckInDeliveryQueue",
		"AlertScope: Forest",
		"Monitor: DeliveryQueueMonitor",
		"Target: forest-07",
	} {
		if !strings.Contains(info, want) {
			t.Errorf("Alert.Info() missing %q", want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := sample(t)
	in.AddEvidence("ProbeLog", SourceProbe, "body", in.CreatedAt)
	in.SetActionOutput("k", "v")

	cp := in.Clone()
	cp.Evidence[0].Body = "mutated"
	cp.SetActionOutput("k", "mutated")
	cp.Title = "mutated"

	if in.Evidence[0].Body != "body" {
		t.Error("clone shares evidence slice with original")
	}
	if in.ActionOutput["k"] != "v" {
		t.Error("clone shares action output map with original")
	}
	if in.Title != "Messages stuck in delivery queue" {
		t.Error("clone shares scalar state with original")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := sample(t)
	in.AddEvidence("ProbeLog", SourceProbe, "Total Probes: 2", in.CreatedAt)
	in.SetActionOutput("known-issue", "false")
	in.Summary = "probe failures on backend machine"
	in.Predicted = "HubPortExhaustion"
	in.Explanation = "matching probe failure signature"

	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.ID != in.ID || got.Predicted != in.Predicted || got.Summary != in.Summary {
		t.Fatalf("round trip mismatch: got %+v", got)
	}
	if len(got.Evidence) != 1 || got.Evidence[0].Body != "Total Probes: 2" {
		t.Fatalf("evidence round trip mismatch: %+v", got.Evidence)
	}
	if got.ActionOutput["known-issue"] != "false" {
		t.Fatalf("action output round trip mismatch: %+v", got.ActionOutput)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Fatal("Decode should fail on malformed input")
	}
}

func TestMarshalJSONIndent(t *testing.T) {
	data, err := sample(t).MarshalJSONIndent()
	if err != nil {
		t.Fatalf("MarshalJSONIndent: %v", err)
	}
	if !strings.Contains(string(data), "\n  \"id\"") {
		t.Errorf("expected indented JSON, got %s", data)
	}
}
