package timeutil

import (
	"sync"
	"time"
)

// RunClock is a per-run view of virtual time: it starts at a base instant
// and advances privately, so many concurrent runs can each model "time
// passes while my telemetry queries execute" without interleaving on one
// shared clock. A RunClock is safe for concurrent use, though a run context
// is normally confined to a single goroutine.
type RunClock struct {
	mu      sync.Mutex
	base    time.Time
	elapsed time.Duration
}

// NewRunClock returns a RunClock starting at base.
func NewRunClock(base time.Time) *RunClock {
	return &RunClock{base: base}
}

// Now implements Clock.
func (c *RunClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base.Add(c.elapsed)
}

// Sleep implements Clock by advancing the view without blocking.
func (c *RunClock) Sleep(d time.Duration) { c.Advance(d) }

// Advance moves the view forward by d (negative d is ignored).
func (c *RunClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.elapsed += d
	c.mu.Unlock()
}

// Elapsed returns how far the view has advanced past its base.
func (c *RunClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed
}

// CostAccumulator collects one run's virtual cost privately, so concurrent
// runs never contend on (or corrupt the delta arithmetic of) a shared
// CostMeter. It is a CostMeter scoped to one run — same Charge/Total/ByKey
// semantics — plus MergeInto, which a finished run uses to fold its cost
// into the fleet-wide meter.
type CostAccumulator struct {
	CostMeter
}

// NewCostAccumulator returns an empty accumulator.
func NewCostAccumulator() *CostAccumulator {
	return &CostAccumulator{CostMeter: CostMeter{byKey: make(map[string]time.Duration)}}
}

// MergeInto adds the accumulator's per-key costs to a shared meter. Every
// addition commutes and CostMeter.Charge locks per call, so the meter's
// final state is identical however concurrent runs' merges interleave.
func (a *CostAccumulator) MergeInto(m *CostMeter) {
	for k, v := range a.ByKey() {
		m.Charge(k, v)
	}
}
