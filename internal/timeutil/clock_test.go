package timeutil

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualAdvance(t *testing.T) {
	start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", v.Now(), start)
	}
	v.Advance(90 * time.Second)
	if want := start.Add(90 * time.Second); !v.Now().Equal(want) {
		t.Fatalf("after Advance, Now() = %v, want %v", v.Now(), want)
	}
	v.Advance(-time.Hour) // ignored
	if want := start.Add(90 * time.Second); !v.Now().Equal(want) {
		t.Fatalf("negative Advance must be ignored, Now() = %v, want %v", v.Now(), want)
	}
}

func TestVirtualSleepDoesNotBlock(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		v.Sleep(24 * time.Hour)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("virtual Sleep blocked")
	}
	if got := v.Now(); !got.Equal(time.Unix(0, 0).Add(24 * time.Hour)) {
		t.Fatalf("Sleep should advance time, got %v", got)
	}
}

func TestVirtualSetOnlyMovesForward(t *testing.T) {
	start := time.Unix(1000, 0)
	v := NewVirtual(start)
	v.Set(time.Unix(500, 0))
	if !v.Now().Equal(start) {
		t.Fatal("Set must not move time backwards")
	}
	v.Set(time.Unix(2000, 0))
	if !v.Now().Equal(time.Unix(2000, 0)) {
		t.Fatal("Set should move time forwards")
	}
}

func TestRealClockMonotoneEnough(t *testing.T) {
	var r Real
	a := r.Now()
	r.Sleep(time.Millisecond)
	if b := r.Now(); b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestCostMeterAccumulates(t *testing.T) {
	m := NewCostMeter()
	m.Charge("query", 2*time.Second)
	m.Charge("query", 3*time.Second)
	m.Charge("llm", time.Second)
	m.Charge("negative", -time.Second) // ignored
	if got := m.Total(); got != 6*time.Second {
		t.Fatalf("Total() = %v, want 6s", got)
	}
	by := m.ByKey()
	if by["query"] != 5*time.Second || by["llm"] != time.Second {
		t.Fatalf("ByKey() = %v", by)
	}
	if _, ok := by["negative"]; ok {
		t.Fatal("negative charges must be ignored")
	}
	m.Reset()
	if m.Total() != 0 || len(m.ByKey()) != 0 {
		t.Fatal("Reset should clear the meter")
	}
}

func TestCostMeterConcurrent(t *testing.T) {
	m := NewCostMeter()
	var wg sync.WaitGroup
	const workers, per = 16, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Charge("site", time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got, want := m.Total(), workers*per*time.Millisecond; got != want {
		t.Fatalf("Total() = %v, want %v", got, want)
	}
}

func TestCostMeterString(t *testing.T) {
	m := NewCostMeter()
	m.Charge("a", time.Second)
	if s := m.String(); s == "" {
		t.Fatal("String() should describe the meter")
	}
}
