package timeutil

import (
	"sync"
	"testing"
	"time"
)

func TestRunClockAdvancesPrivately(t *testing.T) {
	base := time.Date(2022, 6, 1, 12, 0, 0, 0, time.UTC)
	a := NewRunClock(base)
	b := NewRunClock(base)
	a.Advance(90 * time.Second)
	a.Sleep(30 * time.Second)
	a.Advance(-time.Hour) // ignored
	if got := a.Now(); !got.Equal(base.Add(2 * time.Minute)) {
		t.Fatalf("a.Now() = %v, want base+2m", got)
	}
	if got := a.Elapsed(); got != 2*time.Minute {
		t.Fatalf("a.Elapsed() = %v, want 2m", got)
	}
	if got := b.Now(); !got.Equal(base) {
		t.Fatalf("b advanced with a: %v", got)
	}
}

func TestCostAccumulatorChargesAndMerges(t *testing.T) {
	a := NewCostAccumulator()
	a.Charge("probe-log", time.Second)
	a.Charge("probe-log", time.Second)
	a.Charge("dns-check", 500*time.Millisecond)
	a.Charge("dns-check", -time.Hour) // ignored
	if got := a.Total(); got != 2500*time.Millisecond {
		t.Fatalf("Total = %v", got)
	}
	if by := a.ByKey(); by["probe-log"] != 2*time.Second || by["dns-check"] != 500*time.Millisecond {
		t.Fatalf("ByKey = %v", by)
	}

	m := NewCostMeter()
	m.Charge("dns-check", time.Second)
	a.MergeInto(m)
	if got := m.Total(); got != 3500*time.Millisecond {
		t.Fatalf("merged meter total = %v", got)
	}
	if by := m.ByKey(); by["dns-check"] != 1500*time.Millisecond {
		t.Fatalf("merged dns-check = %v", by["dns-check"])
	}
}

// TestCostAccumulatorMergeCommutes merges many per-run accumulators into one
// meter from concurrent goroutines and requires the final state to equal the
// sequential merge — the property that lets collection run unserialized.
func TestCostAccumulatorMergeCommutes(t *testing.T) {
	mk := func(i int) *CostAccumulator {
		a := NewCostAccumulator()
		a.Charge("q", time.Duration(i+1)*time.Second)
		a.Charge("r", time.Duration(i+1)*time.Millisecond)
		return a
	}
	const n = 16

	seq := NewCostMeter()
	for i := 0; i < n; i++ {
		mk(i).MergeInto(seq)
	}

	par := NewCostMeter()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mk(i).MergeInto(par)
		}(i)
	}
	wg.Wait()

	if seq.Total() != par.Total() {
		t.Fatalf("totals diverged: %v vs %v", seq.Total(), par.Total())
	}
	sby, pby := seq.ByKey(), par.ByKey()
	for k, v := range sby {
		if pby[k] != v {
			t.Fatalf("key %s diverged: %v vs %v", k, v, pby[k])
		}
	}
}
