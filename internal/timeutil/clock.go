// Package timeutil provides a virtual clock and a simulated-cost meter.
//
// The paper reports wall-clock execution times measured against production
// telemetry backends and the OpenAI API (e.g. Table 4's per-team handler
// execution times, Table 2's inference latency). Our substrates answer in
// microseconds, so reproducing the *reported* time columns requires modelled
// costs: every simulated backend charges a deterministic virtual duration to
// the clock, and experiments read elapsed virtual time instead of wall time.
package timeutil

import (
	"fmt"
	"sync"
	"time"
)

// Clock abstracts time for the simulation. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Sleep advances past d. A virtual clock advances instantly.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the system clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a deterministic Clock whose time only moves when Advance or
// Sleep is called. The zero value is not ready; use NewVirtual.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a Virtual clock starting at the given instant.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock by advancing the virtual time by d without
// blocking.
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// Advance moves the virtual clock forward by d (negative d is ignored).
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// Set jumps the virtual clock to t if t is not before the current time.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
	}
	v.mu.Unlock()
}

// CostMeter accumulates virtual execution cost by named charge site. It is
// how simulated backends report "this query would have taken 1.8s against
// the real telemetry store".
type CostMeter struct {
	mu    sync.Mutex
	total time.Duration
	byKey map[string]time.Duration
}

// NewCostMeter returns an empty meter.
func NewCostMeter() *CostMeter {
	return &CostMeter{byKey: make(map[string]time.Duration)}
}

// Charge adds d to the meter under the given key.
func (m *CostMeter) Charge(key string, d time.Duration) {
	if d < 0 {
		return
	}
	m.mu.Lock()
	m.total += d
	m.byKey[key] += d
	m.mu.Unlock()
}

// Total returns the accumulated virtual cost.
func (m *CostMeter) Total() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// ByKey returns a copy of the per-key breakdown.
func (m *CostMeter) ByKey() map[string]time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]time.Duration, len(m.byKey))
	for k, v := range m.byKey {
		out[k] = v
	}
	return out
}

// Reset clears the meter.
func (m *CostMeter) Reset() {
	m.mu.Lock()
	m.total = 0
	m.byKey = make(map[string]time.Duration)
	m.mu.Unlock()
}

// String summarizes the meter for logs.
func (m *CostMeter) String() string {
	return fmt.Sprintf("virtual cost %s over %d sites", m.Total(), len(m.ByKey()))
}
