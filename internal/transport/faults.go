package transport

import (
	"fmt"
	"time"

	"repro/internal/incident"
)

// Mode classifies how a fault manifests in fleet state. Generic (long-tail)
// faults pick a mode; the mode determines which monitor will fire.
type Mode string

// Fault manifestation modes.
const (
	ModeCrash             Mode = "crash"              // forest-wide process crashes
	ModeSubmissionBacklog Mode = "submission-backlog" // hub submission queues grow
	ModeDeliveryBacklog   Mode = "delivery-backlog"   // mailbox delivery queues grow
	ModeProbeFailure      Mode = "probe-failure"      // machine probe failures
	ModeDiskPressure      Mode = "disk-pressure"      // volume fills up
	ModeAvailabilityDrop  Mode = "availability-drop"  // component availability drops
	ModeConnectionFlood   Mode = "connection-flood"   // proxy connections exceed cap
	ModeTokenFailure      Mode = "token-failure"      // auth token creation fails
)

// GenericFault parameterizes a long-tail fault: a component and exception
// name that become the distinctive tokens in the diagnostic text, and a
// manifestation mode that selects the state mutation and thus the alert.
type GenericFault struct {
	Category  incident.Category
	Component string // e.g. "StoreWorker"
	Exception string // e.g. "StoreWorkerHeapCorruptionException"
	Mode      Mode
	Severity  incident.Severity
}

// ActiveFault is an injected fault that can be repaired to restore the
// fleet to its pre-fault state.
type ActiveFault struct {
	Category incident.Category
	Mode     Mode
	Forest   string
	Machine  string // set for machine-scoped faults
	Symptom  string
	Cause    string
	undo     []func()
}

// Repair undoes the fault's state mutations (newest first).
func (af *ActiveFault) Repair() {
	for i := len(af.undo) - 1; i >= 0; i-- {
		af.undo[i]()
	}
	af.undo = nil
}

func (af *ActiveFault) onUndo(fn func()) { af.undo = append(af.undo, fn) }

// Table1Categories lists the ten root-cause categories of the paper's
// Table 1, each with a dedicated injector.
func Table1Categories() []incident.Category {
	return []incident.Category{
		"AuthCertIssue", "HubPortExhaustion", "DeliveryHang", "CodeRegression",
		"CertForBogusTenants", "MaliciousAttack", "UseRouteResolution",
		"FullDisk", "InvalidJournaling", "DispatcherTaskCancelled",
	}
}

// Inject applies the named Table-1 fault to the forest at index forestIdx
// and returns a handle for repairing it. Categories outside Table 1 must
// use InjectGeneric.
func (f *Fleet) Inject(cat incident.Category, forestIdx int) (*ActiveFault, error) {
	if forestIdx < 0 || forestIdx >= len(f.Forests) {
		return nil, fmt.Errorf("transport: forest index %d out of range", forestIdx)
	}
	fo := f.Forests[forestIdx]
	af := &ActiveFault{Category: cat, Forest: fo.Name}
	switch cat {
	case "AuthCertIssue":
		af.Mode = ModeTokenFailure
		af.Symptom = "Tokens for requesting services were not able to be created; several services reported users experiencing outages"
		af.Cause = "a previous invalid certificate overrode the existing one due to misconfiguration"
		cert := fo.Certs[0]
		oldValid, oldHealthy := cert.Valid, fo.TokenServiceHealthy
		cert.Valid = false
		fo.TokenServiceHealthy = false
		af.onUndo(func() { cert.Valid = oldValid; fo.TokenServiceHealthy = oldHealthy })

	case "HubPortExhaustion":
		m := f.pickMachine(fo, RoleFrontDoor)
		af.Machine = m.Name
		af.Mode = ModeProbeFailure
		af.Symptom = "a single server failed to do DNS resolution for the incoming packages"
		af.Cause = "the UDP hub ports on the machine had been run out"
		key := ""
		for _, p := range m.Procs {
			if p.Name == "Transport.exe" {
				key = sockKey(p)
			}
		}
		oldSock, oldDNS := m.UDPSockets[key], m.DNSHealthy
		m.UDPSockets[key] = 14000 + f.rng.Intn(2000)
		m.DNSHealthy = false
		n := f.addFailedProbes(m, "DatacenterHubOutboundProxyProbe",
			"Failed probe error: Name: No such host is known. A WinSock error: 11001 encountered when connecting to host: smtp-relay.prod.outlook.example", 2)
		af.onUndo(func() {
			m.UDPSockets[key] = oldSock
			m.DNSHealthy = oldDNS
			m.Probes = m.Probes[:len(m.Probes)-n]
		})

	case "DeliveryHang":
		m := f.pickMachine(fo, RoleMailbox)
		af.Mode = ModeDeliveryBacklog
		af.Symptom = "mailbox delivery service hang for a long time"
		af.Cause = "number of messages queued for mailbox delivery exceeded the limit"
		old := m.Queues["Delivery"]
		m.Queues["Delivery"] = f.cfg.Limits.MaxDeliveryQueue*2 + f.rng.Intn(3000)
		blocked := f.blockThreads(m, "Transport.exe", []string{
			"System.Threading.Monitor.Enter()",
			"Microsoft.Exchange.Transport.Delivery.MailboxDeliverAgent.Deliver()",
			"Transport.exe!DeliveryLoop()",
		})
		af.onUndo(func() { m.Queues["Delivery"] = old; blocked() })

	case "CodeRegression":
		af.Mode = ModeAvailabilityDrop
		af.Symptom = "an SMTP authentication component's availability dropped"
		af.Cause = "bug in the code introduced by a recent deployment"
		old := fo.AuthAvailability
		fo.AuthAvailability = 0.80 + f.rng.Float64()*0.1
		n := f.addCrashes(fo, 4, "NullReferenceException", "SmtpAuthAgent")
		af.onUndo(func() { fo.AuthAvailability = old; fo.Crashes = fo.Crashes[:len(fo.Crashes)-n] })

	case "CertForBogusTenants":
		af.Mode = ModeConnectionFlood
		af.Symptom = "the number of concurrent server connections exceeded a limit"
		af.Cause = "spammers abused the system by creating a lot of bogus tenants with connectors using a certificate domain"
		added := 20 + f.rng.Intn(15)
		for i := 0; i < added; i++ {
			fo.Tenants = append(fo.Tenants, &Tenant{
				Name:        fmt.Sprintf("bogus-%s-%04d", fo.Name, i),
				Connectors:  10 + f.rng.Intn(10),
				Bogus:       true,
				ConfigValid: true,
			})
		}
		m := f.pickMachine(fo, RoleFrontDoor)
		oldConns := m.OutboundProxyConns
		m.OutboundProxyConns = f.cfg.Limits.MaxProxyConns*2 + f.rng.Intn(500)
		af.onUndo(func() {
			fo.Tenants = fo.Tenants[:len(fo.Tenants)-added]
			m.OutboundProxyConns = oldConns
		})

	case "MaliciousAttack":
		af.Mode = ModeCrash
		af.Symptom = "forest-wide processes crashed over threshold"
		af.Cause = "active exploit was launched in remote PowerShell by serializing malicious binary blob"
		n := f.addCrashes(fo, f.cfg.Limits.MaxCrashes+5, "MaliciousBlobSerializationException", "RemotePowerShellHost")
		af.onUndo(func() { fo.Crashes = fo.Crashes[:len(fo.Crashes)-n] })

	case "UseRouteResolution":
		af.Mode = ModeDeliveryBacklog
		af.Symptom = "poisoned messages sent to the forest made the system unhealthy"
		af.Cause = "a configuration service was unable to update the settings leading to the crash"
		oldHealthy := fo.ConfigServiceHealthy
		fo.ConfigServiceHealthy = false
		m := f.pickMachine(fo, RoleMailbox)
		oldQ := m.Queues["Delivery"]
		m.Queues["Delivery"] = f.cfg.Limits.MaxDeliveryQueue + 1500 + f.rng.Intn(2000)
		n := f.addCrashes(fo, 3, "PoisonMessageException", "RouteResolutionAgent")
		af.onUndo(func() {
			fo.ConfigServiceHealthy = oldHealthy
			m.Queues["Delivery"] = oldQ
			fo.Crashes = fo.Crashes[:len(fo.Crashes)-n]
		})

	case "FullDisk":
		m := f.pickMachine(fo, RoleMailbox)
		af.Machine = m.Name
		af.Mode = ModeCrash
		af.Symptom = "many processes crashed and threw IO exceptions"
		af.Cause = "a specific disk was full"
		old := m.DiskUsedPct["D:"]
		m.DiskUsedPct["D:"] = 100
		n := f.addCrashes(fo, f.cfg.Limits.MaxCrashes+2, "System.IO.IOException", "DiagnosticsLog")
		af.onUndo(func() { m.DiskUsedPct["D:"] = old; fo.Crashes = fo.Crashes[:len(fo.Crashes)-n] })

	case "InvalidJournaling":
		af.Mode = ModeSubmissionBacklog
		af.Symptom = "messages stuck in submission queue for a long time"
		af.Cause = "the customer set an invalid value for the Transport config and caused TenantSettingsNotFoundException"
		t := fo.Tenants[f.rng.Intn(len(fo.Tenants))]
		oldValid := t.ConfigValid
		t.ConfigValid = false
		m := f.pickMachine(fo, RoleHub)
		oldQ := m.Queues["Submission"]
		m.Queues["Submission"] = f.cfg.Limits.MaxSubmissionQueue + 2000 + f.rng.Intn(4000)
		n := f.addCrashes(fo, 2, "TenantSettingsNotFoundException", "JournalingAgent")
		af.onUndo(func() {
			t.ConfigValid = oldValid
			m.Queues["Submission"] = oldQ
			fo.Crashes = fo.Crashes[:len(fo.Crashes)-n]
		})

	case "DispatcherTaskCancelled":
		af.Mode = ModeSubmissionBacklog
		af.Symptom = "normal priority messages across a forest had been queued in submission queues for a long time"
		af.Cause = "network problem caused the authentication service to be unreachable"
		oldReach := fo.AuthReachable
		fo.AuthReachable = false
		m := f.pickMachine(fo, RoleHub)
		oldQ := m.Queues["Submission"]
		m.Queues["Submission"] = f.cfg.Limits.MaxSubmissionQueue + 1000 + f.rng.Intn(3000)
		n := f.addCrashes(fo, 2, "TaskCanceledException", "DispatcherAgent")
		af.onUndo(func() {
			fo.AuthReachable = oldReach
			m.Queues["Submission"] = oldQ
			fo.Crashes = fo.Crashes[:len(fo.Crashes)-n]
		})

	default:
		return nil, fmt.Errorf("transport: no dedicated injector for category %q (use InjectGeneric)", cat)
	}
	f.active = append(f.active, af)
	return af, nil
}

// InjectGeneric applies a parameterized long-tail fault. The component and
// exception names flow into crash records, probe messages and log lines, so
// the diagnostic text carries category-distinctive tokens the same way
// Table-1 faults do.
func (f *Fleet) InjectGeneric(gf GenericFault, forestIdx int) (*ActiveFault, error) {
	if forestIdx < 0 || forestIdx >= len(f.Forests) {
		return nil, fmt.Errorf("transport: forest index %d out of range", forestIdx)
	}
	if gf.Category == "" || gf.Component == "" || gf.Exception == "" {
		return nil, fmt.Errorf("transport: generic fault requires category, component and exception")
	}
	fo := f.Forests[forestIdx]
	af := &ActiveFault{
		Category: gf.Category,
		Mode:     gf.Mode,
		Forest:   fo.Name,
		Symptom:  fmt.Sprintf("%s misbehaved raising %s", gf.Component, gf.Exception),
		Cause:    fmt.Sprintf("defect in %s surfaced as %s", gf.Component, gf.Exception),
	}
	switch gf.Mode {
	case ModeCrash:
		n := f.addCrashes(fo, f.cfg.Limits.MaxCrashes+3, gf.Exception, gf.Component)
		af.onUndo(func() { fo.Crashes = fo.Crashes[:len(fo.Crashes)-n] })

	case ModeSubmissionBacklog:
		m := f.pickMachine(fo, RoleHub)
		oldQ := m.Queues["Submission"]
		m.Queues["Submission"] = f.cfg.Limits.MaxSubmissionQueue + 500 + f.rng.Intn(5000)
		n := f.addCrashes(fo, 2, gf.Exception, gf.Component)
		af.onUndo(func() {
			m.Queues["Submission"] = oldQ
			fo.Crashes = fo.Crashes[:len(fo.Crashes)-n]
		})

	case ModeDeliveryBacklog:
		m := f.pickMachine(fo, RoleMailbox)
		oldQ := m.Queues["Delivery"]
		m.Queues["Delivery"] = f.cfg.Limits.MaxDeliveryQueue + 500 + f.rng.Intn(5000)
		n := f.addCrashes(fo, 2, gf.Exception, gf.Component)
		af.onUndo(func() {
			m.Queues["Delivery"] = oldQ
			fo.Crashes = fo.Crashes[:len(fo.Crashes)-n]
		})

	case ModeProbeFailure:
		m := f.pickMachine(fo, RoleFrontDoor)
		af.Machine = m.Name
		n := f.addFailedProbes(m, gf.Component+"Probe",
			fmt.Sprintf("Failed probe error: %s raised by %s", gf.Exception, gf.Component), 3)
		af.onUndo(func() { m.Probes = m.Probes[:len(m.Probes)-n] })

	case ModeDiskPressure:
		m := f.pickMachine(fo, RoleMailbox)
		af.Machine = m.Name
		old := m.DiskUsedPct["C:"]
		m.DiskUsedPct["C:"] = f.cfg.Limits.MaxDiskUsedPct + 3
		n := f.addCrashes(fo, f.cfg.Limits.MaxCrashes+1, gf.Exception, gf.Component)
		af.onUndo(func() { m.DiskUsedPct["C:"] = old; fo.Crashes = fo.Crashes[:len(fo.Crashes)-n] })

	case ModeAvailabilityDrop:
		old := fo.AuthAvailability
		fo.AuthAvailability = 0.85 + f.rng.Float64()*0.1
		n := f.addCrashes(fo, 3, gf.Exception, gf.Component)
		af.onUndo(func() { fo.AuthAvailability = old; fo.Crashes = fo.Crashes[:len(fo.Crashes)-n] })

	case ModeConnectionFlood:
		m := f.pickMachine(fo, RoleFrontDoor)
		old := m.OutboundProxyConns
		m.OutboundProxyConns = f.cfg.Limits.MaxProxyConns + 300 + f.rng.Intn(800)
		n := f.addCrashes(fo, 2, gf.Exception, gf.Component)
		af.onUndo(func() {
			m.OutboundProxyConns = old
			fo.Crashes = fo.Crashes[:len(fo.Crashes)-n]
		})

	case ModeTokenFailure:
		old := fo.TokenServiceHealthy
		fo.TokenServiceHealthy = false
		n := f.addCrashes(fo, 2, gf.Exception, gf.Component)
		af.onUndo(func() {
			fo.TokenServiceHealthy = old
			fo.Crashes = fo.Crashes[:len(fo.Crashes)-n]
		})

	default:
		return nil, fmt.Errorf("transport: unknown fault mode %q", gf.Mode)
	}
	f.active = append(f.active, af)
	return af, nil
}

// ActiveFaults returns the currently injected, unrepaired faults.
func (f *Fleet) ActiveFaults() []*ActiveFault {
	live := f.active[:0]
	for _, af := range f.active {
		if len(af.undo) > 0 {
			live = append(live, af)
		}
	}
	f.active = append([]*ActiveFault(nil), live...)
	return f.active
}

func (f *Fleet) pickMachine(fo *Forest, role Role) *Machine {
	ms := fo.MachinesByRole(role)
	if len(ms) == 0 {
		ms = fo.Machines
	}
	return ms[f.rng.Intn(len(ms))]
}

// addFailedProbes appends count error-level probe results to the machine
// and returns how many were added.
func (f *Fleet) addFailedProbes(m *Machine, probe, msg string, count int) int {
	for i := 0; i < count; i++ {
		m.Probes = append(m.Probes, ProbeResult{
			Probe:   probe,
			Level:   "Error",
			At:      f.clock.Now().Add(-time.Duration(15*(count-i)) * time.Minute),
			Message: msg,
		})
	}
	return count
}

// addCrashes appends count crash events spread across the forest's machines
// and returns how many were added.
func (f *Fleet) addCrashes(fo *Forest, count int, exception, module string) int {
	for i := 0; i < count; i++ {
		m := fo.Machines[f.rng.Intn(len(fo.Machines))]
		p := m.Procs[f.rng.Intn(len(m.Procs))]
		fo.Crashes = append(fo.Crashes, CrashEvent{
			Machine:   m.Name,
			Process:   p.Name,
			Exception: exception,
			Module:    module,
			At:        f.clock.Now().Add(-time.Duration(f.rng.Intn(120)) * time.Minute),
		})
	}
	return count
}

// blockThreads rewrites most threads of the named process to an identical
// blocked stack (how DeliveryHang shows up in thread grouping) and returns
// an undo function.
func (f *Fleet) blockThreads(m *Machine, process string, frames []string) func() {
	var proc *Process
	for _, p := range m.Procs {
		if p.Name == process {
			proc = p
			break
		}
	}
	if proc == nil {
		return func() {}
	}
	saved := make([]ThreadStack, len(proc.Threads))
	copy(saved, proc.Threads)
	for i := range proc.Threads {
		if i%5 == 0 {
			continue // leave a few healthy threads
		}
		proc.Threads[i].State = "Blocked"
		proc.Threads[i].Frames = frames
	}
	return func() { copy(proc.Threads, saved) }
}
