package transport

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Telemetry queries: each renders a diagnostic document from simulated
// state, in the shapes the paper's Figure 6 shows (probe logs, exception
// stacks, socket tables), and charges a modelled virtual cost that stands in
// for the latency of the production telemetry backend.
//
// The queries live on the per-run execution context (Exec): the cost lands
// in the run's own sink and virtual time advances on the run's own clock
// view, so concurrent handler runs never interleave their accounting. The
// Fleet re-exports every query through its ambient context (see exec.go).

// ProbeLog renders the recent synthetic-probe results for a machine,
// matching the DatacenterHubOutboundProxyProbe log of Figure 6.
func (e *Exec) ProbeLog(machine string) (string, error) {
	f := e.fleet
	m, ok := f.Machine(machine)
	if !ok {
		return "", fmt.Errorf("transport: unknown machine %q", machine)
	}
	e.charge("probe-log", 1500*time.Millisecond)

	var b strings.Builder
	failed := 0
	for _, p := range m.Probes {
		if p.Level == "Error" {
			failed++
		}
	}
	fmt.Fprintf(&b, "DatacenterHubOutboundProxyProbe probe log result from %s.\n", m.Name)
	fmt.Fprintf(&b, "Total Probes: %d, Failed Probes: %d\n", len(m.Probes), failed)
	b.WriteString("Id Level Created Description\n")
	b.WriteString("-- ----- ------- -----------\n")
	for i, p := range m.Probes {
		fmt.Fprintf(&b, "%d %s %s %s\n", i+1, p.Level, p.At.Format("1/2/2006 3:04:05 PM"), p.Message)
	}
	return b.String(), nil
}

// SocketMetrics renders the machine's UDP socket table grouped by process,
// top five consumers first (Figure 6's bottom block).
func (e *Exec) SocketMetrics(machine string) (string, error) {
	f := e.fleet
	m, ok := f.Machine(machine)
	if !ok {
		return "", fmt.Errorf("transport: unknown machine %q", machine)
	}
	e.charge("socket-metrics", 800*time.Millisecond)

	type row struct {
		key   string
		count int
	}
	rows := make([]row, 0, len(m.UDPSockets))
	total := 0
	for k, c := range m.UDPSockets {
		rows = append(rows, row{k, c})
		total += c
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].key < rows[j].key
	})
	var b strings.Builder
	fmt.Fprintf(&b, "Total UDP socket count: %d\n", total)
	b.WriteString("Total UDP socket count by process and processId (top 5 only):\n")
	for i, r := range rows {
		if i == 5 {
			break
		}
		name, pid, _ := strings.Cut(r.key, "/")
		fmt.Fprintf(&b, "%d: %s, %s\n", r.count, name, pid)
	}
	return b.String(), nil
}

// ExceptionStacks renders the most recent exception stack traces observed on
// a machine (middle block of Figure 6). Healthy machines report none.
func (e *Exec) ExceptionStacks(machine string) (string, error) {
	f := e.fleet
	m, ok := f.Machine(machine)
	if !ok {
		return "", fmt.Errorf("transport: unknown machine %q", machine)
	}
	e.charge("exception-stacks", 2*time.Second)

	fo, _ := f.Forest(m.Forest)
	var b strings.Builder
	b.WriteString("Exceptions:\n")
	n := 0
	if fo != nil {
		for _, c := range fo.Crashes {
			if c.Machine != m.Name {
				continue
			}
			n++
			fmt.Fprintf(&b, "%s in module %s\n", c.Exception, c.Module)
			fmt.Fprintf(&b, "  at %s.Execute(...)\n  at %s!WorkerLoop()\n", c.Module, c.Process)
		}
	}
	for _, p := range m.Probes {
		if p.Level != "Error" {
			continue
		}
		n++
		fmt.Fprintf(&b, "InformativeSocketException: %s\n", p.Message)
		b.WriteString("  at TcpClientFactory.Create(...)\n  at SimpleSmtpClient.Connect(...)\n")
	}
	if n == 0 {
		b.WriteString("(none observed in the last hour)\n")
	}
	return b.String(), nil
}

// ThreadStackGrouping aggregates threads with identical stacks in the target
// process, the analog of the paper's Get-ThreadStackGrouping.ps1 script used
// to surface deadlocks and blocking code paths.
func (e *Exec) ThreadStackGrouping(machine, process string) (string, error) {
	f := e.fleet
	m, ok := f.Machine(machine)
	if !ok {
		return "", fmt.Errorf("transport: unknown machine %q", machine)
	}
	e.charge("thread-stacks", 4*time.Second)

	var proc *Process
	for _, p := range m.Procs {
		if p.Name == process {
			proc = p
			break
		}
	}
	if proc == nil {
		return "", fmt.Errorf("transport: no process %q on %s", process, machine)
	}
	groups := make(map[string][]int)
	for _, t := range proc.Threads {
		key := t.State + "|" + strings.Join(t.Frames, ";")
		groups[key] = append(groups[key], t.TID)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(groups[keys[i]]) != len(groups[keys[j]]) {
			return len(groups[keys[i]]) > len(groups[keys[j]])
		}
		return keys[i] < keys[j]
	})
	var b strings.Builder
	fmt.Fprintf(&b, "There are %d managed threads in process %s on %s.\n", len(proc.Threads), proc.Name, m.Name)
	for _, k := range keys {
		state, frames, _ := strings.Cut(k, "|")
		fmt.Fprintf(&b, "Group of %d threads [%s]:\n", len(groups[k]), state)
		for _, fr := range strings.Split(frames, ";") {
			fmt.Fprintf(&b, "  at %s\n", fr)
		}
	}
	return b.String(), nil
}

// QueueMetrics renders submission/delivery queue depths for every machine
// in the forest.
func (e *Exec) QueueMetrics(forest string) (string, error) {
	f := e.fleet
	fo, ok := f.Forest(forest)
	if !ok {
		return "", fmt.Errorf("transport: unknown forest %q", forest)
	}
	e.charge("queue-metrics", 1200*time.Millisecond)

	var b strings.Builder
	fmt.Fprintf(&b, "Queue depths for forest %s:\n", fo.Name)
	for _, m := range fo.Machines {
		fmt.Fprintf(&b, "%s Submission=%d Delivery=%d\n", m.Name, m.Queues["Submission"], m.Queues["Delivery"])
	}
	lim := f.cfg.Limits
	for _, m := range fo.Machines {
		if m.Queues["Delivery"] > lim.MaxDeliveryQueue {
			fmt.Fprintf(&b, "WARNING: number of messages queued for mailbox delivery on %s exceeded the limit %d\n",
				m.Name, lim.MaxDeliveryQueue)
		}
		if m.Queues["Submission"] > lim.MaxSubmissionQueue {
			fmt.Fprintf(&b, "WARNING: messages stuck in submission queue on %s beyond limit %d\n",
				m.Name, lim.MaxSubmissionQueue)
		}
	}
	return b.String(), nil
}

// DiskUsage renders per-volume utilization for a machine.
func (e *Exec) DiskUsage(machine string) (string, error) {
	f := e.fleet
	m, ok := f.Machine(machine)
	if !ok {
		return "", fmt.Errorf("transport: unknown machine %q", machine)
	}
	e.charge("disk-usage", 600*time.Millisecond)

	vols := make([]string, 0, len(m.DiskUsedPct))
	for v := range m.DiskUsedPct {
		vols = append(vols, v)
	}
	sort.Strings(vols)
	var b strings.Builder
	fmt.Fprintf(&b, "Disk usage on %s:\n", m.Name)
	for _, v := range vols {
		pct := m.DiskUsedPct[v]
		fmt.Fprintf(&b, "%s %.1f%% used", v, pct)
		if pct >= f.cfg.Limits.MaxDiskUsedPct {
			b.WriteString("  ** volume is full; IO exceptions likely **")
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// CrashEvents renders the forest-wide crash record.
func (e *Exec) CrashEvents(forest string) (string, error) {
	f := e.fleet
	fo, ok := f.Forest(forest)
	if !ok {
		return "", fmt.Errorf("transport: unknown forest %q", forest)
	}
	e.charge("crash-events", 2500*time.Millisecond)

	var b strings.Builder
	fmt.Fprintf(&b, "Crash events in forest %s (last 24h): %d\n", fo.Name, len(fo.Crashes))
	for _, c := range fo.Crashes {
		fmt.Fprintf(&b, "%s %s %s: %s in %s\n",
			c.At.Format("15:04:05"), c.Machine, c.Process, c.Exception, c.Module)
	}
	if len(fo.Crashes) == 0 {
		b.WriteString("(no crashes recorded)\n")
	}
	return b.String(), nil
}

// CertInventory renders the forest's certificate table, flagging invalid
// entries (AuthCertIssue surfaces here).
func (e *Exec) CertInventory(forest string) (string, error) {
	f := e.fleet
	fo, ok := f.Forest(forest)
	if !ok {
		return "", fmt.Errorf("transport: unknown forest %q", forest)
	}
	e.charge("cert-inventory", 1800*time.Millisecond)

	var b strings.Builder
	fmt.Fprintf(&b, "Certificates installed in forest %s:\n", fo.Name)
	for _, c := range fo.Certs {
		status := "valid"
		if !c.Valid {
			status = "INVALID"
		}
		kind := "smtp"
		if c.IsAuthCert {
			kind = "auth"
		}
		fmt.Fprintf(&b, "%s [%s] %s domain=%s notAfter=%s status=%s\n",
			c.Thumbprint[:12], kind, c.Subject, c.Domain, c.NotAfter.Format("2006-01-02"), status)
		if !c.Valid && c.IsAuthCert {
			b.WriteString("  tokens for requesting services cannot be created with this certificate\n")
		}
	}
	return b.String(), nil
}

// TenantConnectors renders per-tenant SMTP connector counts, flagging
// suspicious volumes from recently created tenants.
func (e *Exec) TenantConnectors(forest string) (string, error) {
	f := e.fleet
	fo, ok := f.Forest(forest)
	if !ok {
		return "", fmt.Errorf("transport: unknown forest %q", forest)
	}
	e.charge("tenant-connectors", 2200*time.Millisecond)

	var b strings.Builder
	total, bogus := 0, 0
	for _, t := range fo.Tenants {
		total += t.Connectors
		if t.Bogus {
			bogus++
		}
	}
	fmt.Fprintf(&b, "Forest %s: %d tenants, %d connectors total, %d flagged-bogus tenants\n",
		fo.Name, len(fo.Tenants), total, bogus)
	for _, t := range fo.Tenants {
		if t.Bogus {
			fmt.Fprintf(&b, "SUSPICIOUS: tenant %s created recently with %d connectors using a certificate domain\n",
				t.Name, t.Connectors)
		}
		if !t.ConfigValid {
			fmt.Fprintf(&b, "INVALID CONFIG: tenant %s Transport config raised TenantSettingsNotFoundException\n", t.Name)
		}
	}
	return b.String(), nil
}

// ComponentAvailability renders forest component availability counters.
func (e *Exec) ComponentAvailability(forest string) (string, error) {
	f := e.fleet
	fo, ok := f.Forest(forest)
	if !ok {
		return "", fmt.Errorf("transport: unknown forest %q", forest)
	}
	e.charge("component-availability", 900*time.Millisecond)

	var b strings.Builder
	fmt.Fprintf(&b, "Component availability in forest %s:\n", fo.Name)
	fmt.Fprintf(&b, "SmtpAuth availability: %.4f\n", fo.AuthAvailability)
	fmt.Fprintf(&b, "AuthService reachable: %t\n", fo.AuthReachable)
	fmt.Fprintf(&b, "TokenService healthy: %t\n", fo.TokenServiceHealthy)
	if fo.AuthAvailability < f.cfg.Limits.MinAuthAvailability {
		b.WriteString("ALERT: an SMTP authentication component's availability dropped below target\n")
	}
	if !fo.AuthReachable {
		b.WriteString("network problem: dispatcher tasks cancelled because the authentication service is unreachable\n")
	}
	if !fo.TokenServiceHealthy {
		b.WriteString("tokens for requesting services were not able to be created\n")
	}
	return b.String(), nil
}

// ConfigDump renders the forest configuration-service state.
func (e *Exec) ConfigDump(forest string) (string, error) {
	f := e.fleet
	fo, ok := f.Forest(forest)
	if !ok {
		return "", fmt.Errorf("transport: unknown forest %q", forest)
	}
	e.charge("config-dump", 700*time.Millisecond)

	keys := make([]string, 0, len(fo.Config))
	for k := range fo.Config {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "Configuration service state for %s (healthy=%t):\n", fo.Name, fo.ConfigServiceHealthy)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s = %s\n", k, fo.Config[k])
	}
	if !fo.ConfigServiceHealthy {
		b.WriteString("ERROR: configuration service was unable to update the settings; dependent processes crashed\n")
	}
	return b.String(), nil
}

// DNSResolution renders a DNS health check from a machine, which fails when
// UDP source ports are exhausted (HubPortExhaustion).
func (e *Exec) DNSResolution(machine string) (string, error) {
	f := e.fleet
	m, ok := f.Machine(machine)
	if !ok {
		return "", fmt.Errorf("transport: unknown machine %q", machine)
	}
	e.charge("dns-check", 400*time.Millisecond)

	if m.DNSHealthy {
		return fmt.Sprintf("DNS resolution from %s: OK (resolved smtp relay in 12ms)\n", m.Name), nil
	}
	return fmt.Sprintf("DNS resolution from %s: FAILED\nName: No such host is known.\nA WinSock error: 11001 encountered when connecting to host: smtp-relay.prod.outlook.example\n", m.Name), nil
}

// DeliveryHealth reports whether the forest's delivery service is keeping up
// and whether it was restarted recently (the Figure 5 handler's check).
func (e *Exec) DeliveryHealth(forest string) (string, error) {
	f := e.fleet
	fo, ok := f.Forest(forest)
	if !ok {
		return "", fmt.Errorf("transport: unknown forest %q", forest)
	}
	e.charge("delivery-health", 1100*time.Millisecond)

	var b strings.Builder
	fmt.Fprintf(&b, "Delivery health for forest %s:\n", fo.Name)
	for _, m := range fo.MachinesByRole(RoleMailbox) {
		status := "healthy"
		if m.Queues["Delivery"] > f.cfg.Limits.MaxDeliveryQueue {
			status = "HANGING: mailbox delivery service hang for a long time"
		}
		fmt.Fprintf(&b, "%s delivery=%d status=%s restartedRecently=%t\n",
			m.Name, m.Queues["Delivery"], status, m.RestartedRecently)
	}
	return b.String(), nil
}

// TraceSample renders a short request-flow trace across the forest's tiers,
// annotated with the first failing hop if any.
func (e *Exec) TraceSample(forest string) (string, error) {
	f := e.fleet
	fo, ok := f.Forest(forest)
	if !ok {
		return "", fmt.Errorf("transport: unknown forest %q", forest)
	}
	e.charge("trace-sample", 1600*time.Millisecond)

	fd := fo.MachinesByRole(RoleFrontDoor)
	hb := fo.MachinesByRole(RoleHub)
	mb := fo.MachinesByRole(RoleMailbox)
	var b strings.Builder
	fmt.Fprintf(&b, "Request trace (SMTP SEND) in forest %s:\n", fo.Name)
	if len(fd) > 0 {
		status := "200 OK 8ms"
		if !fd[0].DNSHealthy {
			status = "FAIL WinSock 11001 (host unknown) 1500ms"
		} else if fd[0].OutboundProxyConns > f.cfg.Limits.MaxProxyConns {
			status = "FAIL proxy connection refused: concurrent server connections exceeded a limit"
		}
		fmt.Fprintf(&b, "  frontdoor %s -> %s\n", fd[0].Name, status)
	}
	if len(hb) > 0 {
		status := "accepted 5ms"
		if hb[0].Queues["Submission"] > f.cfg.Limits.MaxSubmissionQueue {
			status = "queued (submission backlog)"
		}
		fmt.Fprintf(&b, "  hub %s -> %s\n", hb[0].Name, status)
	}
	if len(mb) > 0 {
		status := "delivered 11ms"
		if mb[0].Queues["Delivery"] > f.cfg.Limits.MaxDeliveryQueue {
			status = "pending (delivery backlog)"
		}
		fmt.Fprintf(&b, "  mailbox %s -> %s\n", mb[0].Name, status)
	}
	return b.String(), nil
}

// ProvisioningStatus renders the common new-incident check the paper
// mentions (evaluating provisioning status) for a forest.
func (e *Exec) ProvisioningStatus(forest string) (string, error) {
	f := e.fleet
	fo, ok := f.Forest(forest)
	if !ok {
		return "", fmt.Errorf("transport: unknown forest %q", forest)
	}
	e.charge("provisioning-status", 500*time.Millisecond)
	return fmt.Sprintf("Provisioning status for %s: %d/%d machines in service, build %s\n",
		fo.Name, len(fo.Machines), len(fo.Machines), fo.Config["TransportConfigVersion"]), nil
}
