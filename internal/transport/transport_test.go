package transport

import (
	"strings"
	"testing"

	"repro/internal/incident"
)

func newTestFleet(t *testing.T) *Fleet {
	t.Helper()
	return NewFleet(DefaultConfig(42))
}

func TestFleetTopology(t *testing.T) {
	f := newTestFleet(t)
	if len(f.Forests) != 6 {
		t.Fatalf("forests = %d, want 6", len(f.Forests))
	}
	for _, fo := range f.Forests {
		if len(fo.Machines) != 9 {
			t.Fatalf("forest %s machines = %d, want 9", fo.Name, len(fo.Machines))
		}
		for _, role := range []Role{RoleFrontDoor, RoleHub, RoleMailbox} {
			if len(fo.MachinesByRole(role)) == 0 {
				t.Fatalf("forest %s has no %s machines", fo.Name, role)
			}
		}
		if len(fo.Tenants) != 12 {
			t.Fatalf("forest %s tenants = %d, want 12", fo.Name, len(fo.Tenants))
		}
		if len(fo.Certs) < 2 {
			t.Fatalf("forest %s certs = %d, want >= 2", fo.Name, len(fo.Certs))
		}
	}
}

func TestFleetDeterministic(t *testing.T) {
	a, b := NewFleet(DefaultConfig(7)), NewFleet(DefaultConfig(7))
	for i := range a.Forests {
		for j := range a.Forests[i].Machines {
			if a.Forests[i].Machines[j].Name != b.Forests[i].Machines[j].Name {
				t.Fatal("same seed must produce identical machine names")
			}
		}
	}
	sa, err := a.SocketMetrics(a.Forests[0].Machines[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.SocketMetrics(b.Forests[0].Machines[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatal("same seed must produce identical telemetry")
	}
}

func TestHealthyFleetRaisesNoAlerts(t *testing.T) {
	f := newTestFleet(t)
	if alerts := f.RunMonitors(); len(alerts) != 0 {
		t.Fatalf("healthy fleet raised %d alerts: %+v", len(alerts), alerts)
	}
	if _, ok := f.FirstAlert(); ok {
		t.Fatal("FirstAlert on healthy fleet should report none")
	}
}

// wantAlert maps each Table-1 category to the alert its injection must fire.
var wantAlert = map[incident.Category]struct {
	alertType incident.AlertType
	scope     incident.Scope
}{
	"AuthCertIssue":           {AlertTokenCreationFailure, incident.ScopeForest},
	"HubPortExhaustion":       {AlertFrontDoorConnectionFailure, incident.ScopeMachine},
	"DeliveryHang":            {AlertMessagesStuckInDelivery, incident.ScopeForest},
	"CodeRegression":          {AlertComponentAvailabilityDrop, incident.ScopeForest},
	"CertForBogusTenants":     {AlertTooManyServerConnections, incident.ScopeForest},
	"MaliciousAttack":         {AlertProcessCrashSpike, incident.ScopeForest},
	"UseRouteResolution":      {AlertMessagesStuckInDelivery, incident.ScopeForest},
	"FullDisk":                {AlertProcessCrashSpike, incident.ScopeForest},
	"InvalidJournaling":       {AlertMessagesStuckInSubmission, incident.ScopeForest},
	"DispatcherTaskCancelled": {AlertMessagesStuckInSubmission, incident.ScopeForest},
}

func TestEveryTable1CategoryFiresExpectedAlertAndRepairs(t *testing.T) {
	for _, cat := range Table1Categories() {
		cat := cat
		t.Run(string(cat), func(t *testing.T) {
			f := newTestFleet(t)
			af, err := f.Inject(cat, 0)
			if err != nil {
				t.Fatalf("Inject: %v", err)
			}
			if af.Category != cat || af.Forest == "" {
				t.Fatalf("fault handle incomplete: %+v", af)
			}
			alert, ok := f.FirstAlert()
			if !ok {
				t.Fatal("no alert fired after injection")
			}
			want := wantAlert[cat]
			if alert.Type != want.alertType {
				t.Fatalf("alert type = %s, want %s", alert.Type, want.alertType)
			}
			if alert.Scope != want.scope {
				t.Fatalf("alert scope = %s, want %s", alert.Scope, want.scope)
			}
			if alert.Forest != f.Forests[0].Name {
				t.Fatalf("alert forest = %s, want %s", alert.Forest, f.Forests[0].Name)
			}
			af.Repair()
			if alerts := f.RunMonitors(); len(alerts) != 0 {
				t.Fatalf("alerts remained after Repair: %+v", alerts)
			}
		})
	}
}

func TestInjectUnknownCategoryFails(t *testing.T) {
	f := newTestFleet(t)
	if _, err := f.Inject("NoSuchCategory", 0); err == nil {
		t.Fatal("expected error for unknown category")
	}
	if _, err := f.Inject("FullDisk", 99); err == nil {
		t.Fatal("expected error for out-of-range forest")
	}
}

func TestHubPortExhaustionTelemetrySignals(t *testing.T) {
	f := newTestFleet(t)
	af, err := f.Inject("HubPortExhaustion", 0)
	if err != nil {
		t.Fatal(err)
	}
	sock, err := f.SocketMetrics(af.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sock, "Transport.exe") {
		t.Errorf("socket metrics missing dominant process:\n%s", sock)
	}
	probe, err := f.ProbeLog(af.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(probe, "Failed Probes: 2") {
		t.Errorf("probe log missing failures:\n%s", probe)
	}
	if !strings.Contains(probe, "WinSock error: 11001") {
		t.Errorf("probe log missing WinSock signature:\n%s", probe)
	}
	dns, err := f.DNSResolution(af.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dns, "FAILED") {
		t.Errorf("dns check should fail under port exhaustion:\n%s", dns)
	}
	stacks, err := f.ExceptionStacks(af.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stacks, "InformativeSocketException") {
		t.Errorf("exception stacks missing socket exception:\n%s", stacks)
	}
}

func TestDeliveryHangShowsBlockedThreadGroup(t *testing.T) {
	f := newTestFleet(t)
	if _, err := f.Inject("DeliveryHang", 1); err != nil {
		t.Fatal(err)
	}
	// Find the backlogged mailbox machine.
	var machine string
	for _, m := range f.Forests[1].MachinesByRole(RoleMailbox) {
		if m.Queues["Delivery"] > f.Limits().MaxDeliveryQueue {
			machine = m.Name
		}
	}
	if machine == "" {
		t.Fatal("no backlogged mailbox machine found")
	}
	out, err := f.ThreadStackGrouping(machine, "Transport.exe")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Blocked") || !strings.Contains(out, "MailboxDeliverAgent.Deliver") {
		t.Errorf("thread grouping missing blocked delivery stack:\n%s", out)
	}
}

func TestFullDiskTelemetry(t *testing.T) {
	f := newTestFleet(t)
	af, err := f.Inject("FullDisk", 0)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := f.DiskUsage(af.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(disk, "volume is full") {
		t.Errorf("disk usage missing full-volume flag:\n%s", disk)
	}
	crashes, err := f.CrashEvents(af.Forest)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(crashes, "System.IO.IOException") {
		t.Errorf("crash events missing IO exception:\n%s", crashes)
	}
}

func TestCertAndTenantTelemetry(t *testing.T) {
	f := newTestFleet(t)
	if _, err := f.Inject("AuthCertIssue", 0); err != nil {
		t.Fatal(err)
	}
	certs, err := f.CertInventory(f.Forests[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(certs, "INVALID") {
		t.Errorf("cert inventory missing invalid cert:\n%s", certs)
	}

	if _, err := f.Inject("CertForBogusTenants", 1); err != nil {
		t.Fatal(err)
	}
	tenants, err := f.TenantConnectors(f.Forests[1].Name)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tenants, "SUSPICIOUS") {
		t.Errorf("tenant connectors missing bogus flag:\n%s", tenants)
	}
}

func TestGenericFaultModes(t *testing.T) {
	modes := map[Mode]incident.AlertType{
		ModeCrash:             AlertProcessCrashSpike,
		ModeSubmissionBacklog: AlertMessagesStuckInSubmission,
		ModeDeliveryBacklog:   AlertMessagesStuckInDelivery,
		ModeProbeFailure:      AlertFrontDoorConnectionFailure,
		ModeDiskPressure:      AlertProcessCrashSpike, // crash monitor outranks disk
		ModeAvailabilityDrop:  AlertComponentAvailabilityDrop,
		ModeConnectionFlood:   AlertTooManyServerConnections,
		ModeTokenFailure:      AlertTokenCreationFailure,
	}
	for mode, want := range modes {
		mode, want := mode, want
		t.Run(string(mode), func(t *testing.T) {
			f := newTestFleet(t)
			af, err := f.InjectGeneric(GenericFault{
				Category:  "StoreWorkerHeapCorruption",
				Component: "StoreWorker",
				Exception: "StoreWorkerHeapCorruptionException",
				Mode:      mode,
			}, 0)
			if err != nil {
				t.Fatalf("InjectGeneric: %v", err)
			}
			alert, ok := f.FirstAlert()
			if !ok {
				t.Fatal("no alert after generic injection")
			}
			if alert.Type != want {
				t.Fatalf("alert = %s, want %s", alert.Type, want)
			}
			af.Repair()
			if alerts := f.RunMonitors(); len(alerts) != 0 {
				t.Fatalf("alerts remained after Repair: %+v", alerts)
			}
		})
	}
}

func TestInjectGenericValidation(t *testing.T) {
	f := newTestFleet(t)
	if _, err := f.InjectGeneric(GenericFault{Mode: ModeCrash}, 0); err == nil {
		t.Fatal("generic fault without names should fail")
	}
	if _, err := f.InjectGeneric(GenericFault{
		Category: "X", Component: "C", Exception: "E", Mode: "bogus"}, 0); err == nil {
		t.Fatal("unknown mode should fail")
	}
}

func TestGenericExceptionAppearsInCrashTelemetry(t *testing.T) {
	f := newTestFleet(t)
	if _, err := f.InjectGeneric(GenericFault{
		Category:  "DnsCacheStampede",
		Component: "DnsCache",
		Exception: "DnsCacheStampedeException",
		Mode:      ModeCrash,
	}, 2); err != nil {
		t.Fatal(err)
	}
	out, err := f.CrashEvents(f.Forests[2].Name)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DnsCacheStampedeException") {
		t.Errorf("crash telemetry missing distinctive exception:\n%s", out)
	}
}

func TestTelemetryUnknownTargets(t *testing.T) {
	f := newTestFleet(t)
	if _, err := f.ProbeLog("nope"); err == nil {
		t.Error("ProbeLog should fail for unknown machine")
	}
	if _, err := f.QueueMetrics("nope"); err == nil {
		t.Error("QueueMetrics should fail for unknown forest")
	}
	if _, err := f.ThreadStackGrouping(f.Forests[0].Machines[0].Name, "ghost.exe"); err == nil {
		t.Error("ThreadStackGrouping should fail for unknown process")
	}
}

func TestQueryCostsAccumulateOnMeter(t *testing.T) {
	f := newTestFleet(t)
	before := f.Meter().Total()
	if _, err := f.ProbeLog(f.Forests[0].Machines[0].Name); err != nil {
		t.Fatal(err)
	}
	if _, err := f.QueueMetrics(f.Forests[0].Name); err != nil {
		t.Fatal(err)
	}
	if f.Meter().Total() <= before {
		t.Fatal("telemetry queries must charge virtual cost")
	}
	if len(f.Meter().ByKey()) < 2 {
		t.Fatal("costs should be broken down by charge site")
	}
}

func TestQueryCostScale(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.QueryCostScale = 10
	big := NewFleet(cfg)
	small := NewFleet(DefaultConfig(1))
	if _, err := big.ProbeLog(big.Forests[0].Machines[0].Name); err != nil {
		t.Fatal(err)
	}
	if _, err := small.ProbeLog(small.Forests[0].Machines[0].Name); err != nil {
		t.Fatal(err)
	}
	if big.Meter().Total() <= small.Meter().Total() {
		t.Fatal("QueryCostScale must scale modelled cost")
	}
}

func TestTraceSampleReflectsFaults(t *testing.T) {
	f := newTestFleet(t)
	healthy, err := f.TraceSample(f.Forests[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(healthy, "FAIL") {
		t.Errorf("healthy trace should not fail:\n%s", healthy)
	}
	if _, err := f.Inject("DeliveryHang", 0); err != nil {
		t.Fatal(err)
	}
	// The injected mailbox machine may not be the first; check DeliveryHealth
	// instead, which scans all mailbox machines.
	dh, err := f.DeliveryHealth(f.Forests[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dh, "HANGING") {
		t.Errorf("delivery health should show hang:\n%s", dh)
	}
}

func TestActiveFaultsTracksRepair(t *testing.T) {
	f := newTestFleet(t)
	af, err := f.Inject("FullDisk", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(f.ActiveFaults()); n != 1 {
		t.Fatalf("active faults = %d, want 1", n)
	}
	af.Repair()
	if n := len(f.ActiveFaults()); n != 0 {
		t.Fatalf("active faults after repair = %d, want 0", n)
	}
}

func TestComponentAvailabilityRendersDispatcherSignal(t *testing.T) {
	f := newTestFleet(t)
	if _, err := f.Inject("DispatcherTaskCancelled", 0); err != nil {
		t.Fatal(err)
	}
	out, err := f.ComponentAvailability(f.Forests[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "authentication service is unreachable") {
		t.Errorf("availability telemetry missing dispatcher signal:\n%s", out)
	}
}

func TestConfigDumpShowsUnhealthyConfigService(t *testing.T) {
	f := newTestFleet(t)
	if _, err := f.Inject("UseRouteResolution", 0); err != nil {
		t.Fatal(err)
	}
	out, err := f.ConfigDump(f.Forests[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "unable to update the settings") {
		t.Errorf("config dump missing unhealthy signal:\n%s", out)
	}
}

func TestProvisioningStatus(t *testing.T) {
	f := newTestFleet(t)
	out, err := f.ProvisioningStatus(f.Forests[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "in service") {
		t.Errorf("provisioning status malformed:\n%s", out)
	}
}
