package transport

import (
	"fmt"

	"repro/internal/incident"
)

// Alert types raised by the fleet's monitors. Several root-cause categories
// share an alert type — the paper's premise that "incidents sharing the same
// alert type exhibit similar symptoms, though they may stem from different
// root causes" (§4.1).
const (
	AlertTokenCreationFailure       incident.AlertType = "TokenCreationFailure"
	AlertProcessCrashSpike          incident.AlertType = "ProcessCrashSpike"
	AlertComponentAvailabilityDrop  incident.AlertType = "ComponentAvailabilityDrop"
	AlertTooManyServerConnections   incident.AlertType = "TooManyServerConnections"
	AlertMessagesStuckInDelivery    incident.AlertType = "MessagesStuckInDeliveryQueue"
	AlertMessagesStuckInSubmission  incident.AlertType = "MessagesStuckInSubmissionQueue"
	AlertFrontDoorConnectionFailure incident.AlertType = "FrontDoorConnectionFailures"
	AlertDiskSpaceLow               incident.AlertType = "DiskSpaceLow"
)

// AllAlertTypes lists every alert type a monitor can raise, in priority
// order (highest first).
func AllAlertTypes() []incident.AlertType {
	return []incident.AlertType{
		AlertTokenCreationFailure,
		AlertProcessCrashSpike,
		AlertComponentAvailabilityDrop,
		AlertTooManyServerConnections,
		AlertMessagesStuckInDelivery,
		AlertMessagesStuckInSubmission,
		AlertFrontDoorConnectionFailure,
		AlertDiskSpaceLow,
	}
}

// RunMonitors scans the whole fleet against its limits and returns every
// alert that would fire, ordered by monitor priority. Healthy fleets return
// nothing.
func (f *Fleet) RunMonitors() []incident.Alert {
	var out []incident.Alert
	lim := f.cfg.Limits
	now := f.clock.Now()

	forestAlert := func(fo *Forest, t incident.AlertType, monitor, msg string) {
		out = append(out, incident.Alert{
			Type: t, Scope: incident.ScopeForest, Monitor: monitor,
			Target: fo.Name, Forest: fo.Name, Message: msg, RaisedAt: now,
		})
	}
	machineAlert := func(m *Machine, t incident.AlertType, monitor, msg string) {
		out = append(out, incident.Alert{
			Type: t, Scope: incident.ScopeMachine, Monitor: monitor,
			Target: m.Name, Forest: m.Forest, Message: msg, RaisedAt: now,
		})
	}

	// Priority 1: token-service failures (outage-level).
	for _, fo := range f.Forests {
		if !fo.TokenServiceHealthy {
			forestAlert(fo, AlertTokenCreationFailure, "TokenServiceWatchdog",
				fmt.Sprintf("tokens for requesting services cannot be created in forest %s; dependent services report outages", fo.Name))
		}
	}
	// Priority 2: crash spikes.
	for _, fo := range f.Forests {
		if len(fo.Crashes) > lim.MaxCrashes {
			forestAlert(fo, AlertProcessCrashSpike, "CrashBucketMonitor",
				fmt.Sprintf("forest-wide processes crashed over threshold: %d crashes in %s within 24h", len(fo.Crashes), fo.Name))
		}
	}
	// Priority 3: component availability.
	for _, fo := range f.Forests {
		if fo.AuthAvailability < lim.MinAuthAvailability {
			forestAlert(fo, AlertComponentAvailabilityDrop, "AvailabilityMonitor",
				fmt.Sprintf("SMTP authentication component availability dropped to %.4f in forest %s", fo.AuthAvailability, fo.Name))
		}
	}
	// Priority 4: connection floods.
	for _, fo := range f.Forests {
		for _, m := range fo.MachinesByRole(RoleFrontDoor) {
			if m.OutboundProxyConns > lim.MaxProxyConns {
				forestAlert(fo, AlertTooManyServerConnections, "ConnectionCountMonitor",
					fmt.Sprintf("number of concurrent server connections on %s exceeded the limit %d", m.Name, lim.MaxProxyConns))
				break
			}
		}
	}
	// Priority 5: delivery backlog.
	for _, fo := range f.Forests {
		for _, m := range fo.Machines {
			if m.Queues["Delivery"] > lim.MaxDeliveryQueue {
				forestAlert(fo, AlertMessagesStuckInDelivery, "DeliveryQueueMonitor",
					fmt.Sprintf("too many messages stuck in the delivery queue on %s (depth %d)", m.Name, m.Queues["Delivery"]))
				break
			}
		}
	}
	// Priority 6: submission backlog.
	for _, fo := range f.Forests {
		for _, m := range fo.Machines {
			if m.Queues["Submission"] > lim.MaxSubmissionQueue {
				forestAlert(fo, AlertMessagesStuckInSubmission, "SubmissionQueueMonitor",
					fmt.Sprintf("normal priority messages queued in submission queues on %s for a long time (depth %d)", m.Name, m.Queues["Submission"]))
				break
			}
		}
	}
	// Priority 7: probe failures (machine scope).
	for _, fo := range f.Forests {
		for _, m := range fo.Machines {
			failed := 0
			for _, p := range m.Probes {
				if p.Level == "Error" {
					failed++
				}
			}
			if failed >= lim.ProbeFailureAlertMin {
				machineAlert(m, AlertFrontDoorConnectionFailure, "ProbeResultMonitor",
					fmt.Sprintf("detected %d failures when connecting to the front door server %s", failed, m.Name))
			}
		}
	}
	// Priority 8: disk space.
	for _, fo := range f.Forests {
		for _, m := range fo.Machines {
			for vol, pct := range m.DiskUsedPct {
				if pct >= lim.MaxDiskUsedPct {
					machineAlert(m, AlertDiskSpaceLow, "DiskSpaceMonitor",
						fmt.Sprintf("volume %s on %s is %.0f%% full", vol, m.Name, pct))
					break
				}
			}
		}
	}
	return out
}

// FirstAlert runs the monitors and returns the highest-priority alert, which
// is the one that opens the incident (the paper activates exactly one
// handler per incident, matched by alert type with 100%% accuracy, §6).
func (f *Fleet) FirstAlert() (incident.Alert, bool) {
	alerts := f.RunMonitors()
	if len(alerts) == 0 {
		return incident.Alert{}, false
	}
	return alerts[0], true
}
