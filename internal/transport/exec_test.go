package transport

import (
	"sync"
	"testing"
	"time"
)

func TestExecChargesPrivatelyAndFinishMerges(t *testing.T) {
	f := NewFleet(DefaultConfig(21))
	machine := f.Forests[0].Machines[0].Name
	base := time.Date(2022, 3, 1, 9, 0, 0, 0, time.UTC)

	sharedBefore := f.Meter().Total()
	clockBefore := f.Clock().Now()

	e := f.NewExec(base)
	if _, err := e.ProbeLog(machine); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DNSResolution(machine); err != nil {
		t.Fatal(err)
	}

	want := 1500*time.Millisecond + 400*time.Millisecond
	if got := e.CostTotal(); got != want {
		t.Fatalf("exec cost = %v, want %v", got, want)
	}
	if got := e.Costs().Total(); got != want {
		t.Fatalf("accumulator total = %v, want %v", got, want)
	}
	if !e.Now().Equal(base.Add(want)) {
		t.Fatalf("exec clock = %v, want base+%v", e.Now(), want)
	}
	// Nothing leaked into the fleet before Finish.
	if f.Meter().Total() != sharedBefore {
		t.Fatalf("fleet meter moved before Finish: %v", f.Meter().Total())
	}
	if !f.Clock().Now().Equal(clockBefore) {
		t.Fatalf("fleet clock moved before Finish: %v", f.Clock().Now())
	}

	e.Finish()
	if got := f.Meter().Total() - sharedBefore; got != want {
		t.Fatalf("merged fleet cost = %v, want %v", got, want)
	}
	if !f.Clock().Now().Equal(clockBefore.Add(want)) {
		t.Fatalf("fleet clock after Finish = %v", f.Clock().Now())
	}
	if by := f.Meter().ByKey(); by["probe-log"] != 1500*time.Millisecond {
		t.Fatalf("probe-log merged cost = %v", by["probe-log"])
	}
}

func TestExecZeroBaseStartsAtFleetClock(t *testing.T) {
	f := NewFleet(DefaultConfig(21))
	e := f.NewExec(time.Time{})
	if !e.Now().Equal(f.Clock().Now()) {
		t.Fatalf("zero-base exec starts at %v, fleet at %v", e.Now(), f.Clock().Now())
	}
}

func TestAmbientExecChargesFleetDirectly(t *testing.T) {
	f := NewFleet(DefaultConfig(21))
	machine := f.Forests[0].Machines[0].Name
	before := f.Meter().Total()
	clockBefore := f.Clock().Now()

	a := f.Ambient()
	if a.Costs() != nil {
		t.Fatal("ambient context should have no private accumulator")
	}
	if _, err := a.DiskUsage(machine); err != nil {
		t.Fatal(err)
	}
	if got := f.Meter().Total() - before; got != 600*time.Millisecond {
		t.Fatalf("ambient charge = %v, want 600ms", got)
	}
	if !f.Clock().Now().Equal(clockBefore.Add(600 * time.Millisecond)) {
		t.Fatalf("ambient clock advance wrong: %v", f.Clock().Now())
	}
	a.Finish() // no-op
	if got := f.Meter().Total() - before; got != 600*time.Millisecond {
		t.Fatalf("ambient Finish double-charged: %v", got)
	}
}

// TestConcurrentExecsDoNotInterleave runs many execs against one fleet at
// once; each must observe exactly its own cost, and the fleet totals must
// equal the sequential sum.
func TestConcurrentExecsDoNotInterleave(t *testing.T) {
	f := NewFleet(DefaultConfig(21))
	machine := f.Forests[0].Machines[0].Name
	base := f.Clock().Now()
	const runs = 32
	perRun := 1500*time.Millisecond + 800*time.Millisecond // probe-log + socket-metrics

	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := f.NewExec(base)
			if _, err := e.ProbeLog(machine); err != nil {
				t.Error(err)
				return
			}
			if _, err := e.SocketMetrics(machine); err != nil {
				t.Error(err)
				return
			}
			if got := e.CostTotal(); got != perRun {
				t.Errorf("run cost = %v, want %v", got, perRun)
			}
			e.Finish()
		}()
	}
	wg.Wait()

	if got, want := f.Meter().Total(), time.Duration(runs)*perRun; got != want {
		t.Fatalf("fleet total = %v, want %v", got, want)
	}
	if got, want := f.Clock().Now(), base.Add(time.Duration(runs)*perRun); !got.Equal(want) {
		t.Fatalf("fleet clock = %v, want %v", got, want)
	}
}
