package transport

import (
	"time"

	"repro/internal/timeutil"
)

// execClock is the clock surface a run context advances: the fleet's shared
// virtual clock (ambient context) or a private per-run view.
type execClock interface {
	Now() time.Time
	Advance(d time.Duration)
}

// costSink is where a run context books its modelled telemetry cost: the
// fleet-wide meter (ambient context) or a private per-run accumulator.
type costSink interface {
	Charge(key string, d time.Duration)
	Total() time.Duration
}

// Exec is a per-run execution context over a Fleet: every telemetry query it
// serves charges its modelled cost into the context's own sink and advances
// the context's own clock view. Contexts are what let many handler runs
// execute concurrently against one fleet — cost attribution and virtual time
// are private to the run, so nothing interleaves — while the fleet's shared
// meter and clock still see every run once the context is Finished.
//
// Fleet state reads (Forest, Machine, Limits, ...) remain on *Fleet; an Exec
// adds only the charged query surface.
type Exec struct {
	fleet    *Fleet
	clock    execClock
	costs    costSink
	private  *timeutil.CostAccumulator // nil for the ambient context
	finished bool                      // Finish already merged this run
	// tenant, when set, prefixes every charge key ("tenant/site"), so the
	// merged fleet meter keeps per-tenant cost attribution — the
	// accounting surface multi-tenant serving exports per team.
	tenant string
}

// NewExec returns a per-run execution context whose clock view starts at
// `at` (the incident's creation time, typically). A zero `at` starts at the
// fleet clock's current instant.
func (f *Fleet) NewExec(at time.Time) *Exec {
	if at.IsZero() {
		at = f.clock.Now()
	}
	acc := timeutil.NewCostAccumulator()
	return &Exec{
		fleet:   f,
		clock:   timeutil.NewRunClock(at),
		costs:   acc,
		private: acc,
	}
}

// NewExecTenant is NewExec with the run's telemetry cost attributed to a
// tenant: every charge key is prefixed "tenant/", so after Finish the
// fleet meter breaks out each team's collection cost. An empty tenant is
// plain NewExec.
func (f *Fleet) NewExecTenant(at time.Time, tenant string) *Exec {
	e := f.NewExec(at)
	e.tenant = tenant
	return e
}

// Tenant returns the tenant this run's cost is attributed to ("" for
// untagged runs).
func (e *Exec) Tenant() string { return e.tenant }

// Ambient returns the fleet's shared execution context: queries charge the
// fleet meter directly and advance the shared virtual clock, the pre-context
// behaviour. It is what the Fleet's own query methods delegate to, and what
// sequential drivers (corpus generation, single-threaded tools) use.
// Concurrent callers wanting per-run cost attribution use NewExec instead.
func (f *Fleet) Ambient() *Exec { return f.ambient }

// Fleet returns the fleet under diagnosis.
func (e *Exec) Fleet() *Fleet { return e.fleet }

// Now returns the context's current virtual time.
func (e *Exec) Now() time.Time { return e.clock.Now() }

// CostTotal returns the total virtual cost charged through this context's
// sink so far (for the ambient context: the fleet meter's running total).
func (e *Exec) CostTotal() time.Duration { return e.costs.Total() }

// Costs returns the run's private cost accumulator, or nil for the ambient
// context (which charges the fleet meter directly).
func (e *Exec) Costs() *timeutil.CostAccumulator { return e.private }

// Finish folds a per-run context back into fleet-level accounting: the
// private accumulator merges into the fleet meter and the shared virtual
// clock advances past the run's total cost. Both operations commute, so the
// fleet's final state is identical however concurrent runs' Finishes
// interleave. Finish is idempotent (subsequent calls are no-ops, so
// `defer ec.Finish()` is safe alongside an explicit call) and a no-op for
// the ambient context, which charged the fleet directly. Like the rest of a
// run context, it is meant to be called from the run's own goroutine.
func (e *Exec) Finish() {
	if e.private == nil || e.finished {
		return
	}
	e.finished = true
	e.private.MergeInto(e.fleet.meter)
	e.fleet.clock.Advance(e.private.Total())
}

// charge books a modelled telemetry cost against the context's sink and
// advances its clock view, simulating the latency of the backing store.
// Tenant-bound contexts charge under "tenant/site" keys, keeping each
// team's share visible after the merge into the fleet meter.
func (e *Exec) charge(site string, d time.Duration) {
	d = time.Duration(float64(d) * e.fleet.cfg.QueryCostScale)
	if e.tenant != "" {
		site = e.tenant + "/" + site
	}
	e.costs.Charge(site, d)
	e.clock.Advance(d)
}

// ---- Fleet-level query surface (ambient-context delegation) ----
//
// The Fleet keeps the full telemetry query API for sequential callers and
// existing tests; each call runs on the ambient context, charging the fleet
// meter and advancing the shared clock exactly as before per-run contexts
// existed.

// ProbeLog renders a machine's recent synthetic-probe results.
func (f *Fleet) ProbeLog(machine string) (string, error) { return f.ambient.ProbeLog(machine) }

// SocketMetrics renders a machine's UDP socket table.
func (f *Fleet) SocketMetrics(machine string) (string, error) {
	return f.ambient.SocketMetrics(machine)
}

// ExceptionStacks renders a machine's recent exception stacks.
func (f *Fleet) ExceptionStacks(machine string) (string, error) {
	return f.ambient.ExceptionStacks(machine)
}

// ThreadStackGrouping aggregates identical thread stacks in a process.
func (f *Fleet) ThreadStackGrouping(machine, process string) (string, error) {
	return f.ambient.ThreadStackGrouping(machine, process)
}

// QueueMetrics renders a forest's queue depths.
func (f *Fleet) QueueMetrics(forest string) (string, error) { return f.ambient.QueueMetrics(forest) }

// DiskUsage renders a machine's per-volume utilization.
func (f *Fleet) DiskUsage(machine string) (string, error) { return f.ambient.DiskUsage(machine) }

// CrashEvents renders a forest's crash record.
func (f *Fleet) CrashEvents(forest string) (string, error) { return f.ambient.CrashEvents(forest) }

// CertInventory renders a forest's certificate table.
func (f *Fleet) CertInventory(forest string) (string, error) {
	return f.ambient.CertInventory(forest)
}

// TenantConnectors renders a forest's per-tenant connector counts.
func (f *Fleet) TenantConnectors(forest string) (string, error) {
	return f.ambient.TenantConnectors(forest)
}

// ComponentAvailability renders a forest's component availability counters.
func (f *Fleet) ComponentAvailability(forest string) (string, error) {
	return f.ambient.ComponentAvailability(forest)
}

// ConfigDump renders a forest's configuration-service state.
func (f *Fleet) ConfigDump(forest string) (string, error) { return f.ambient.ConfigDump(forest) }

// DNSResolution renders a DNS health check from a machine.
func (f *Fleet) DNSResolution(machine string) (string, error) {
	return f.ambient.DNSResolution(machine)
}

// DeliveryHealth reports a forest's delivery-service health.
func (f *Fleet) DeliveryHealth(forest string) (string, error) {
	return f.ambient.DeliveryHealth(forest)
}

// TraceSample renders a request-flow trace across a forest's tiers.
func (f *Fleet) TraceSample(forest string) (string, error) { return f.ambient.TraceSample(forest) }

// ProvisioningStatus renders a forest's provisioning check.
func (f *Fleet) ProvisioningStatus(forest string) (string, error) {
	return f.ambient.ProvisioningStatus(forest)
}
