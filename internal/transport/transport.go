// Package transport simulates the Transport email service the paper
// evaluates RCACopilot against: a globally distributed mail-flow fleet of
// forests containing front-door proxies, hub routers and mailbox servers,
// together with the telemetry sources (probe logs, socket tables, thread
// stacks, queue counters, disks, certificates, tenants) that incident
// handlers query, the fault injectors that produce each root-cause category
// from Table 1, and the monitors that raise typed alerts.
//
// The real Transport service is closed; this simulator substitutes it by
// modelling exactly the state the paper's diagnostic examples exercise
// (Figure 6's probe log / exception stack / UDP socket table is rendered
// verbatim-shaped from machine state here). Everything is deterministic
// given the seed, and every telemetry query charges a modelled virtual cost
// so experiments can report execution times in the units the paper uses.
package transport

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/timeutil"
)

// Role distinguishes server responsibilities inside a forest.
type Role string

// Server roles in a Transport forest.
const (
	RoleFrontDoor Role = "FrontDoor" // SMTP outbound proxies
	RoleHub       Role = "Hub"       // routing/dispatch servers
	RoleMailbox   Role = "Mailbox"   // delivery/store servers
)

// ThreadStack is one managed thread's current stack, used by the
// Get-ThreadStackGrouping query to surface deadlocks and blocking paths.
type ThreadStack struct {
	TID    int
	State  string // "Running", "Blocked", "Waiting"
	Frames []string
}

// Process is a service process on a machine.
type Process struct {
	Name         string
	PID          int
	Crashed      bool
	CrashReason  string // exception name when Crashed
	WorkingSetMB int
	Threads      []ThreadStack
}

// ProbeResult is one synthetic-probe outcome.
type ProbeResult struct {
	Probe   string
	Level   string // "Info" or "Error"
	At      time.Time
	Message string
}

// CrashEvent is a forest-wide crash record.
type CrashEvent struct {
	Machine   string
	Process   string
	Exception string
	Module    string
	At        time.Time
}

// Certificate is a tenant-facing or auth certificate installed in a forest.
type Certificate struct {
	Thumbprint string
	Subject    string
	Domain     string
	Valid      bool
	NotAfter   time.Time
	IsAuthCert bool
}

// Tenant is a customer tenant homed in a forest.
type Tenant struct {
	Name        string
	Connectors  int  // SMTP connectors configured by the tenant
	Bogus       bool // spammer-created tenant (CertForBogusTenants)
	ConfigValid bool // Transport config validity (InvalidJournaling)
}

// Machine is one server in a forest.
type Machine struct {
	Name   string
	Role   Role
	Forest string

	Procs []*Process

	// UDPSockets maps "process/pid" to its open UDP socket count.
	UDPSockets map[string]int

	// DiskUsedPct maps volume name to percent used.
	DiskUsedPct map[string]float64

	// Queues maps queue name ("Submission", "Delivery") to queued messages.
	Queues map[string]int

	// Probes is the recent probe history, newest last.
	Probes []ProbeResult

	// DNSHealthy is false when the machine cannot resolve hosts
	// (hub port exhaustion starves the resolver of UDP source ports).
	DNSHealthy bool

	// OutboundProxyConns is the count of concurrent SMTP outbound proxy
	// connections (front doors have a hard cap).
	OutboundProxyConns int

	// RestartedRecently reports whether the delivery service was bounced
	// in the last hour (checked by the Figure 5 handler).
	RestartedRecently bool
}

// Forest is a cluster of servers serving a set of tenants.
type Forest struct {
	Name     string
	Machines []*Machine
	Tenants  []*Tenant
	Certs    []*Certificate

	// Config is the forest-level configuration service state.
	Config map[string]string
	// ConfigServiceHealthy is false when the configuration service cannot
	// push setting updates (UseRouteResolution).
	ConfigServiceHealthy bool

	// AuthAvailability is the SMTP auth component availability in [0,1].
	AuthAvailability float64
	// AuthReachable is false when the authentication service is cut off by
	// a network problem (DispatcherTaskCancelled).
	AuthReachable bool
	// TokenServiceHealthy is false when auth-token creation is failing
	// (AuthCertIssue).
	TokenServiceHealthy bool

	Crashes []CrashEvent
}

// Limits are the service thresholds monitors alert on. They default to
// DefaultLimits; tests may tighten them.
type Limits struct {
	MaxUDPSockets        int     // per machine, before hub port exhaustion
	MaxDeliveryQueue     int     // per forest mailbox server
	MaxSubmissionQueue   int     // per forest hub server
	MaxProxyConns        int     // per front door machine
	MinAuthAvailability  float64 // availability floor before alerting
	MaxCrashes           int     // forest-wide crash threshold
	MaxDiskUsedPct       float64 // disk full threshold
	MaxTenantConnectors  int     // connectors across bogus tenants
	ProbeFailureAlertMin int     // failed probes before alerting
}

// DefaultLimits mirrors plausible production thresholds.
func DefaultLimits() Limits {
	return Limits{
		MaxUDPSockets:        10000,
		MaxDeliveryQueue:     5000,
		MaxSubmissionQueue:   8000,
		MaxProxyConns:        1500,
		MinAuthAvailability:  0.99,
		MaxCrashes:           10,
		MaxDiskUsedPct:       95,
		MaxTenantConnectors:  200,
		ProbeFailureAlertMin: 2,
	}
}

// Config parameterizes fleet construction.
type Config struct {
	Seed       int64
	NumForests int
	// MachinesPerForest is split across roles (at least one per role).
	MachinesPerForest int
	// TenantsPerForest seeds each forest's tenant list.
	TenantsPerForest int
	Limits           Limits
	// QueryCostScale multiplies every telemetry query's modelled cost;
	// large teams in Table 4 use higher scales.
	QueryCostScale float64
}

// DefaultConfig returns the fleet shape used by the experiments.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:              seed,
		NumForests:        6,
		MachinesPerForest: 9,
		TenantsPerForest:  12,
		Limits:            DefaultLimits(),
		QueryCostScale:    1.0,
	}
}

// Fleet is the simulated Transport service.
type Fleet struct {
	cfg     Config
	rng     *rand.Rand
	clock   *timeutil.Virtual
	meter   *timeutil.CostMeter
	ambient *Exec
	Forests []*Forest
	active  []*ActiveFault
}

// NewFleet builds a deterministic fleet from the configuration.
func NewFleet(cfg Config) *Fleet {
	if cfg.NumForests <= 0 {
		cfg.NumForests = 1
	}
	if cfg.MachinesPerForest < 3 {
		cfg.MachinesPerForest = 3
	}
	if cfg.QueryCostScale <= 0 {
		cfg.QueryCostScale = 1.0
	}
	if cfg.Limits == (Limits{}) {
		cfg.Limits = DefaultLimits()
	}
	f := &Fleet{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		clock: timeutil.NewVirtual(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)),
		meter: timeutil.NewCostMeter(),
	}
	f.ambient = &Exec{fleet: f, clock: f.clock, costs: f.meter}
	for i := 0; i < cfg.NumForests; i++ {
		f.Forests = append(f.Forests, f.buildForest(i))
	}
	return f
}

// Clock exposes the fleet's virtual clock; dataset generation drives it
// across the simulated year.
func (f *Fleet) Clock() *timeutil.Virtual { return f.clock }

// Meter exposes the accumulated virtual telemetry cost.
func (f *Fleet) Meter() *timeutil.CostMeter { return f.meter }

// Limits returns the alerting thresholds in force.
func (f *Fleet) Limits() Limits { return f.cfg.Limits }

func (f *Fleet) buildForest(idx int) *Forest {
	name := fmt.Sprintf("NAMPR%02dA", idx+1)
	fo := &Forest{
		Name:                 name,
		Config:               map[string]string{"TransportConfigVersion": fmt.Sprintf("v%d", 100+idx)},
		ConfigServiceHealthy: true,
		AuthAvailability:     0.9990 + f.rng.Float64()*0.0009,
		AuthReachable:        true,
		TokenServiceHealthy:  true,
	}
	n := f.cfg.MachinesPerForest
	for m := 0; m < n; m++ {
		var role Role
		switch {
		case m < n/3:
			role = RoleFrontDoor
		case m < 2*n/3:
			role = RoleHub
		default:
			role = RoleMailbox
		}
		fo.Machines = append(fo.Machines, f.buildMachine(name, role, m))
	}
	for t := 0; t < f.cfg.TenantsPerForest; t++ {
		fo.Tenants = append(fo.Tenants, &Tenant{
			Name:        fmt.Sprintf("tenant-%s-%03d", name, t),
			Connectors:  1 + f.rng.Intn(3),
			ConfigValid: true,
		})
	}
	fo.Certs = append(fo.Certs,
		&Certificate{
			Thumbprint: f.hex(20),
			Subject:    "CN=mail." + name + ".prod.outlook.example",
			Domain:     name + ".prod.outlook.example",
			Valid:      true,
			NotAfter:   f.clock.Now().AddDate(1, 0, 0),
			IsAuthCert: true,
		},
		&Certificate{
			Thumbprint: f.hex(20),
			Subject:    "CN=smtp." + name + ".prod.outlook.example",
			Domain:     "smtp." + name + ".prod.outlook.example",
			Valid:      true,
			NotAfter:   f.clock.Now().AddDate(0, 6, 0),
		},
	)
	return fo
}

func (f *Fleet) buildMachine(forest string, role Role, idx int) *Machine {
	m := &Machine{
		Name:        fmt.Sprintf("%s-%s%02d", forest, roleTag(role), idx+1),
		Role:        role,
		Forest:      forest,
		UDPSockets:  make(map[string]int),
		DiskUsedPct: map[string]float64{"C:": 35 + f.rng.Float64()*20, "D:": 40 + f.rng.Float64()*25},
		Queues:      map[string]int{"Submission": f.rng.Intn(120), "Delivery": f.rng.Intn(200)},
		DNSHealthy:  true,
	}
	procNames := []string{"Transport.exe", "w3wp.exe", "svchost.exe", "Microsoft.Transport.Store.Worker.exe"}
	for i, pn := range procNames {
		p := &Process{
			Name:         pn,
			PID:          4000 + f.rng.Intn(200000),
			WorkingSetMB: 200 + f.rng.Intn(1800),
		}
		threads := 8 + f.rng.Intn(24)
		for t := 0; t < threads; t++ {
			p.Threads = append(p.Threads, ThreadStack{
				TID:    100 + t,
				State:  "Waiting",
				Frames: healthyFrames(pn),
			})
		}
		m.Procs = append(m.Procs, p)
		base := []int{40, 12, 8, 7}[i%4]
		m.UDPSockets[sockKey(p)] = base + f.rng.Intn(20)
	}
	if role == RoleFrontDoor {
		m.OutboundProxyConns = 100 + f.rng.Intn(300)
	}
	// Healthy probe history.
	for i := 0; i < 2; i++ {
		m.Probes = append(m.Probes, ProbeResult{
			Probe:   "DatacenterHubOutboundProxyProbe",
			Level:   "Info",
			At:      f.clock.Now().Add(-time.Duration(15*(i+1)) * time.Minute),
			Message: "Probe result: success",
		})
	}
	return m
}

func roleTag(r Role) string {
	switch r {
	case RoleFrontDoor:
		return "FD"
	case RoleHub:
		return "HB"
	default:
		return "MB"
	}
}

func sockKey(p *Process) string { return fmt.Sprintf("%s/%d", p.Name, p.PID) }

func healthyFrames(proc string) []string {
	return []string{
		"System.Threading.WaitHandle.WaitOne()",
		"Microsoft.Exchange.Transport.Scheduler.Wait()",
		fmt.Sprintf("%s!WorkerLoop()", proc),
	}
}

// hex returns n deterministic pseudo-random hex characters.
func (f *Fleet) hex(n int) string {
	const digits = "0123456789ABCDEF"
	b := make([]byte, n)
	for i := range b {
		b[i] = digits[f.rng.Intn(16)]
	}
	return string(b)
}

// Forest returns the forest with the given name.
func (f *Fleet) Forest(name string) (*Forest, bool) {
	for _, fo := range f.Forests {
		if fo.Name == name {
			return fo, true
		}
	}
	return nil, false
}

// Machine returns the machine with the given name anywhere in the fleet.
func (f *Fleet) Machine(name string) (*Machine, bool) {
	for _, fo := range f.Forests {
		for _, m := range fo.Machines {
			if m.Name == name {
				return m, true
			}
		}
	}
	return nil, false
}

// MachinesByRole returns the forest's machines with the given role.
func (fo *Forest) MachinesByRole(role Role) []*Machine {
	var out []*Machine
	for _, m := range fo.Machines {
		if m.Role == role {
			out = append(out, m)
		}
	}
	return out
}

