package rcacopilot

import (
	"fmt"
	"testing"

	"repro/internal/vectordb"
)

// TestSystemShardedMatchesFlat assembles two systems over the same corpus
// and seed — one on the flat store, one sharded with IVF routing — and
// requires identical end-to-end outcomes: the facade-level proof that the
// Config shard knobs change scaling, not results.
func TestSystemShardedMatchesFlat(t *testing.T) {
	c := sharedCorpus(t)
	history := c.Incidents[:150]

	build := func(cfg Config) (*System, *Incident) {
		t.Helper()
		sys, err := NewSystem(c.Fleet, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.TrainEmbedding(history); err != nil {
			t.Fatal(err)
		}
		if err := sys.AddHistory(history); err != nil {
			t.Fatal(err)
		}
		probe := c.Incidents[200].Clone()
		probe.Summary, probe.Predicted, probe.Explanation = "", "", ""
		return sys, probe
	}

	flatSys, flatProbe := build(Config{Seed: 2})
	shardSys, shardProbe := build(Config{Seed: 2, Shards: 7, Partitioner: PartitionIVF})

	idx := shardSys.Copilot().Index()
	s, ok := idx.(*vectordb.Sharded)
	if !ok {
		t.Fatalf("sharded system runs on %T", idx)
	}
	if _, ok := s.Partitioner().(*vectordb.IVF); !ok {
		t.Fatalf("partitioner is %T after AddHistory, want trained IVF", s.Partitioner())
	}
	if s.Len() != len(history) {
		t.Fatalf("sharded history len = %d, want %d", s.Len(), len(history))
	}

	flatRes, err := flatSys.Predict(flatProbe)
	if err != nil {
		t.Fatal(err)
	}
	shardRes, err := shardSys.Predict(shardProbe)
	if err != nil {
		t.Fatal(err)
	}
	if flatRes.Category != shardRes.Category || flatRes.Explanation != shardRes.Explanation {
		t.Fatalf("sharded prediction diverged: %+v vs %+v", shardRes, flatRes)
	}
}

// TestSystemAsyncLearnQueue exercises the Config.AsyncLearnQueue wiring:
// feedback verdicts land in the history only after Flush, and the history
// grows by exactly the confirmed count.
func TestSystemAsyncLearnQueue(t *testing.T) {
	c := sharedCorpus(t)
	sys, err := NewSystem(c.Fleet, Config{Seed: 2, AsyncLearnQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	history := c.Incidents[:120]
	if err := sys.TrainEmbedding(history); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddHistory(history); err != nil {
		t.Fatal(err)
	}
	loop := sys.Feedback()
	defer loop.Close()
	before := sys.Copilot().Index().Len()

	const reviews = 5
	for i := 0; i < reviews; i++ {
		inc := c.Incidents[300+i].Clone()
		inc.ID = fmt.Sprintf("INC-ASYNC-%d", i)
		inc.Predicted = inc.Category
		if _, err := loop.Submit(inc, VerdictConfirm, "", "oce", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := loop.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Copilot().Index().Len(); got != before+reviews {
		t.Fatalf("history len = %d after Flush, want %d", got, before+reviews)
	}
}
