package rcacopilot

import (
	"fmt"
	"testing"

	"repro/internal/vectordb"
)

// TestSystemShardedMatchesFlat assembles two systems over the same corpus
// and seed — one on the flat store, one sharded with IVF routing — and
// requires identical end-to-end outcomes: the facade-level proof that the
// Config shard knobs change scaling, not results.
func TestSystemShardedMatchesFlat(t *testing.T) {
	c := sharedCorpus(t)
	history := c.Incidents[:150]

	build := func(cfg Config) (*System, *Incident) {
		t.Helper()
		sys, err := NewSystem(c.Fleet, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.TrainEmbedding(history); err != nil {
			t.Fatal(err)
		}
		if err := sys.AddHistory(history); err != nil {
			t.Fatal(err)
		}
		probe := c.Incidents[200].Clone()
		probe.Summary, probe.Predicted, probe.Explanation = "", "", ""
		return sys, probe
	}

	flatSys, flatProbe := build(Config{Seed: 2})
	shardSys, shardProbe := build(Config{Seed: 2, Shards: 7, Partitioner: PartitionIVF})

	idx := shardSys.Copilot().Index()
	s, ok := idx.(*vectordb.Sharded)
	if !ok {
		t.Fatalf("sharded system runs on %T", idx)
	}
	if _, ok := s.Partitioner().(*vectordb.IVF); !ok {
		t.Fatalf("partitioner is %T after AddHistory, want trained IVF", s.Partitioner())
	}
	if s.Len() != len(history) {
		t.Fatalf("sharded history len = %d, want %d", s.Len(), len(history))
	}

	flatRes, err := flatSys.Predict(flatProbe)
	if err != nil {
		t.Fatal(err)
	}
	shardRes, err := shardSys.Predict(shardProbe)
	if err != nil {
		t.Fatal(err)
	}
	if flatRes.Category != shardRes.Category || flatRes.Explanation != shardRes.Explanation {
		t.Fatalf("sharded prediction diverged: %+v vs %+v", shardRes, flatRes)
	}
}

// TestSystemAdaptiveServing exercises the Config.RecallTarget/ShadowRate/
// RetrainSkew wiring end to end: the adaptive controller must be live on
// the system's index after AddHistory (trained IVF, probe budget within
// [1, shards]), and the full pipeline must predict while shadow sampling
// runs behind retrieval.
func TestSystemAdaptiveServing(t *testing.T) {
	c := sharedCorpus(t)
	sys, err := NewSystem(c.Fleet, Config{
		Seed: 2, Shards: 7, Partitioner: PartitionIVF,
		RecallTarget: 0.95, ShadowRate: 1, RetrainSkew: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	history := c.Incidents[:150]
	if err := sys.TrainEmbedding(history); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddHistory(history); err != nil {
		t.Fatal(err)
	}
	s, ok := sys.Copilot().Index().(*vectordb.Sharded)
	if !ok {
		t.Fatalf("adaptive system runs on %T", sys.Copilot().Index())
	}
	tn := s.AdaptiveTuner()
	if tn == nil {
		t.Fatal("adaptive config must install a controller")
	}
	if _, ok := s.Partitioner().(*vectordb.IVF); !ok {
		t.Fatalf("partitioner is %T after AddHistory, want trained IVF", s.Partitioner())
	}
	probe := c.Incidents[200].Clone()
	probe.Summary, probe.Predicted, probe.Explanation = "", "", ""
	res, err := sys.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Category == "" {
		t.Fatal("adaptive Predict returned no category")
	}
	tn.Quiesce()
	if p := s.Probes(); p < 1 || p > 7 {
		t.Fatalf("effective probe budget %d outside [1, 7]", p)
	}
	// Bad adaptive configs must be rejected at the facade too.
	if _, err := NewSystem(c.Fleet, Config{Seed: 2, RecallTarget: 0.95}); err == nil {
		t.Fatal("RecallTarget without an IVF sharded store must fail")
	}
	if _, err := NewSystem(c.Fleet, Config{
		Seed: 2, Shards: 7, Partitioner: PartitionIVF, RecallTarget: 0.95, Probes: 2,
	}); err == nil {
		t.Fatal("RecallTarget and Probes together must fail")
	}
}

// TestSystemAsyncLearnQueue exercises the Config.AsyncLearnQueue wiring:
// feedback verdicts land in the history only after Flush, and the history
// grows by exactly the confirmed count.
func TestSystemAsyncLearnQueue(t *testing.T) {
	c := sharedCorpus(t)
	sys, err := NewSystem(c.Fleet, Config{Seed: 2, AsyncLearnQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	history := c.Incidents[:120]
	if err := sys.TrainEmbedding(history); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddHistory(history); err != nil {
		t.Fatal(err)
	}
	loop := sys.Feedback()
	defer loop.Close()
	before := sys.Copilot().Index().Len()

	const reviews = 5
	for i := 0; i < reviews; i++ {
		inc := c.Incidents[300+i].Clone()
		inc.ID = fmt.Sprintf("INC-ASYNC-%d", i)
		inc.Predicted = inc.Category
		if _, err := loop.Submit(inc, VerdictConfirm, "", "oce", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := loop.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Copilot().Index().Len(); got != before+reviews {
		t.Fatalf("history len = %d after Flush, want %d", got, before+reviews)
	}
}
