package rcacopilot

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// streamIncidents builds n identical incidents with CreatedAt pinned to at,
// so stream results are comparable with the batch API's (the temporal-decay
// retrieval reads the incident timestamp).
func streamIncidents(sys *System, alert Alert, n int, prefix string, at time.Time) []*Incident {
	incs := make([]*Incident, n)
	for i := range incs {
		incs[i] = &Incident{
			ID: fmt.Sprintf("INC-%s-%03d", prefix, i), Title: alert.Message,
			OwningTeam: "Transport", Severity: Sev2, Alert: alert,
			CreatedAt: at,
		}
	}
	return incs
}

// TestHandleStreamMatchesBatch feeds a stream and a batch the same incident
// set and requires identical per-incident predictions — the streaming API
// inherits the pipeline's determinism contract.
func TestHandleStreamMatchesBatch(t *testing.T) {
	sys, alert := raceSystem(t)
	at := sys.Fleet().Clock().Now()

	batchIncs := streamIncidents(sys, alert, 12, "SB", at)
	if _, err := sys.HandleIncidents(batchIncs, 1); err != nil {
		t.Fatal(err)
	}

	streamIncs := streamIncidents(sys, alert, 12, "SS", at)
	in := make(chan *Incident)
	out := sys.HandleStream(context.Background(), in)
	go func() {
		for _, inc := range streamIncs {
			in <- inc
		}
		close(in)
	}()

	got := 0
	for res := range out {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Incident == nil || res.Outcome == nil {
			t.Fatal("stream result missing incident or outcome")
		}
		got++
	}
	if got != len(streamIncs) {
		t.Fatalf("stream emitted %d results, want %d", got, len(streamIncs))
	}
	for i := range streamIncs {
		if streamIncs[i].Predicted != batchIncs[i].Predicted {
			t.Errorf("incident %d prediction diverged: stream %q vs batch %q",
				i, streamIncs[i].Predicted, batchIncs[i].Predicted)
		}
		if streamIncs[i].Summary != batchIncs[i].Summary {
			t.Errorf("incident %d summary diverged", i)
		}
	}
}

// TestHandleStreamEmitsPerIncidentErrors sends one malformed incident among
// good ones; the stream must report it as a StreamResult.Err and keep
// processing the rest.
func TestHandleStreamEmitsPerIncidentErrors(t *testing.T) {
	sys, alert := raceSystem(t)
	incs := streamIncidents(sys, alert, 4, "SE", sys.Fleet().Clock().Now())
	incs[2] = &Incident{ID: "INC-BAD"} // fails validation

	in := make(chan *Incident, len(incs))
	for _, inc := range incs {
		in <- inc
	}
	close(in)

	var errs, oks int
	for res := range sys.HandleStream(context.Background(), in) {
		if res.Err != nil {
			errs++
			if res.Incident.ID != "INC-BAD" {
				t.Errorf("unexpected error on %s: %v", res.Incident.ID, res.Err)
			}
		} else {
			oks++
		}
	}
	if errs != 1 || oks != 3 {
		t.Fatalf("stream saw %d errors / %d successes, want 1/3", errs, oks)
	}
}

// TestHandleStreamCancelClosesOutput cancels mid-stream without draining and
// requires the output channel to close promptly (no blocked workers).
func TestHandleStreamCancelClosesOutput(t *testing.T) {
	sys, alert := raceSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan *Incident) // never closed; cancellation must end the stream
	out := sys.HandleStream(ctx, in)

	// Feed a few incidents without consuming results, then cancel.
	incs := streamIncidents(sys, alert, 2, "SC", sys.Fleet().Clock().Now())
	go func() {
		for _, inc := range incs {
			select {
			case in <- inc:
			case <-ctx.Done():
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()

	select {
	case _, open := <-out:
		for open {
			_, open = <-out
		}
	case <-time.After(30 * time.Second):
		t.Fatal("output channel did not close after cancellation")
	}
}
