// Package rcacopilot is a from-scratch Go reproduction of RCACopilot —
// "Automatic Root Cause Analysis via Large Language Models for Cloud
// Incidents" (Chen et al., EuroSys 2024) — an on-call system that automates
// cloud-incident root cause analysis in two stages:
//
//  1. Diagnostic information collection: the incoming incident is matched
//     by alert type to an OCE-authored incident handler — a decision tree
//     of reusable scope-switching / query / mitigation actions — which
//     gathers multi-source diagnostics (logs, metrics, traces, stacks).
//  2. Root cause prediction: the diagnostics are summarized by an LLM,
//     embedded with a FastText model trained on historical incidents,
//     matched against the incident history under a temporal-decay
//     nearest-neighbour similarity, and a chain-of-thought prompt asks the
//     LLM to pick the historical incident sharing the root cause — or to
//     declare the incident unseen and coin a new category — together with
//     an explanatory narrative.
//
// The paper's closed substrates (Microsoft's Transport service, its
// incident corpus, and the OpenAI API) are replaced by faithful simulations
// (see DESIGN.md); the public API below is what a production deployment
// would target, with the simulated fleet standing in for real telemetry
// backends.
//
// Quick start:
//
//	fleet := rcacopilot.NewFleet(1)
//	sys, _ := rcacopilot.NewSystem(fleet, rcacopilot.Config{Model: "gpt-4", Seed: 1})
//	corpus, _ := rcacopilot.GenerateCorpus(1)         // or load your own history
//	sys.TrainEmbedding(corpus.Incidents)              // FastText over history
//	sys.AddHistory(corpus.Incidents)                  // fill the vector DB
//	outcome, _ := sys.HandleIncident(inc)             // collect → summarize → predict
//	fmt.Println(inc.Predicted, inc.Explanation)
//
// # Concurrency and determinism
//
// A System is safe for concurrent use. HandleIncidents processes a batch of
// incidents on a bounded worker pool, and HandleStream consumes a live
// channel of incidents — the alert-bus shape — emitting results as they
// complete, with backpressure against the same process-wide worker budget.
// Every pipeline stage runs unserialized: summarization and prediction are
// stateless per incident, and each collection run executes on its own
// execution context (a per-run cost accumulator plus a per-run virtual
// clock view based at the incident's creation time), merging back into
// fleet-level accounting only through commutative additions.
//
// Concurrency does not cost reproducibility: the simulated GPT endpoint
// derives its random state per request, seeding an RNG with
// seed ^ hash(prompt), so a completion depends only on the client seed and
// the prompt text — never on call order or interleaving — and per-run
// execution contexts make collection outputs a function of the incident
// alone. Identical incidents therefore produce identical predictions
// whether handled one at a time, in a concurrent batch, or over a stream,
// and the evaluation harness exploits the same contract to parallelize the
// paper's experiments while reproducing the sequential results bit for bit.
package rcacopilot

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed/fasttext"
	"repro/internal/feedback"
	"repro/internal/handler"
	"repro/internal/incident"
	"repro/internal/llm"
	"repro/internal/llm/simgpt"
	"repro/internal/parallel"
	"repro/internal/prompt"
	"repro/internal/report"
	"repro/internal/transport"
	"repro/internal/vectordb"
)

// Re-exported core types, so library users work entirely through this
// package.
type (
	// Incident is a cloud incident moving through the pipeline.
	Incident = incident.Incident
	// Alert is the monitor signal that opens an incident.
	Alert = incident.Alert
	// Category is a root-cause category label.
	Category = incident.Category
	// Evidence is one piece of collected diagnostic information.
	Evidence = incident.Evidence
	// Severity is the incident severity level (Sev1 most severe).
	Severity = incident.Severity
	// Fleet is the simulated Transport email service under diagnosis.
	Fleet = transport.Fleet
	// FleetConfig parameterizes fleet construction.
	FleetConfig = transport.Config
	// Handler is an OCE-authored incident handler (decision tree).
	Handler = handler.Handler
	// RunReport summarizes one handler execution.
	RunReport = handler.RunReport
	// Prediction is a parsed root-cause prediction.
	Prediction = prompt.Result
	// ContextSources selects the prompt context (Table 3 ablation axes).
	ContextSources = core.ContextSources
	// Corpus is a generated historical incident dataset.
	Corpus = dataset.Corpus
	// CorpusSpec parameterizes corpus generation.
	CorpusSpec = dataset.Spec
	// EmbeddingConfig parameterizes FastText training.
	EmbeddingConfig = fasttext.Config
	// FeedbackLoop records OCE verdicts and feeds confirmed labels back
	// into the incident history (§5.5).
	FeedbackLoop = feedback.Loop
	// FeedbackEntry is one recorded OCE verdict.
	FeedbackEntry = feedback.Entry
	// LearnFailure is one failed background learn, attributed to the OCE
	// who submitted the verdict (see FeedbackLoop.Failures/SetNotifier).
	LearnFailure = feedback.Failure
	// Verdict is an OCE judgement on a prediction.
	Verdict = feedback.Verdict
	// ReportOptions tune incident-notification rendering.
	ReportOptions = report.Options
	// Retrieved is one vector-DB retrieval hit: the stored historical
	// incident with its distance and temporal-decay similarity.
	Retrieved = vectordb.Scored
	// RetryItem is one unresolved learn failure's self-heal schedule entry
	// (see FeedbackLoop.RetrySchedule).
	RetryItem = feedback.RetryItem
)

// Feedback verdicts.
const (
	VerdictConfirm = feedback.VerdictConfirm
	VerdictCorrect = feedback.VerdictCorrect
	VerdictReject  = feedback.VerdictReject
)

// Severity levels.
const (
	Sev1 = incident.Sev1
	Sev2 = incident.Sev2
	Sev3 = incident.Sev3
	Sev4 = incident.Sev4
)

// Supported chat models (simulated GPT endpoints).
const (
	ModelGPT4  = simgpt.GPT4
	ModelGPT35 = simgpt.GPT35
)

// Shard-routing strategies for Config.Partitioner.
const (
	PartitionCategory = core.PartitionCategory
	PartitionIVF      = core.PartitionIVF
)

// Config parameterizes a System.
type Config struct {
	// Model selects the chat model: ModelGPT4 (default) or ModelGPT35.
	Model string
	// Seed drives all stochastic behaviour.
	Seed int64
	// K is the number of retrieved demonstrations (default 5).
	K int
	// Alpha is the temporal-decay coefficient per day (default 0.3).
	Alpha float64
	// Team owns the handlers (default "Transport").
	Team string
	// MultiTenant serves each incident's owning team as a tenant over the
	// shared vector store: learned entries land in the team's namespace,
	// Predict retrieves demonstrations only from the owning team's own
	// history, RetrieveTeam scopes free-text reads per tenant, and
	// collection cost is metered per team. Off (the default), the system
	// is bit-identical to single-tenant serving.
	MultiTenant bool
	// Context selects the prompt context sources (default: summarized
	// diagnostic information, the paper's best Table-3 row).
	Context ContextSources
	// Embedding overrides FastText training parameters.
	Embedding EmbeddingConfig
	// Chat overrides the chat model entirely (ignores Model/Seed); use it
	// to plug a real LLM endpoint into the pipeline.
	Chat llm.Client
	// Shards partitions the incident history across this many vector-store
	// shards with parallel query fan-out. 0 (unset) defaults to
	// runtime.NumCPU(); an explicit 1 keeps the flat exact store. Retrieval
	// results are bit-identical either way; sharding changes how the store
	// scales, not what it returns.
	Shards int
	// Partitioner selects shard routing when Shards > 1:
	// PartitionCategory (default) or PartitionIVF, which trains a coarse
	// quantizer from the stored vectors after each AddHistory batch.
	Partitioner string
	// Probes opts retrieval into probe-limited approximate serving:
	// queries search only this many IVF partitions nearest the query
	// instead of every shard, trading a bounded recall loss for a
	// ~Shards/Probes scan reduction — the recall/latency knob of a
	// production deployment serving millions of historical incidents.
	// Requires Shards > 1 with Partitioner PartitionIVF; dormant (exact)
	// until the quantizer trains on the first AddHistory batch. 0 keeps
	// exact fan-out, which is bit-identical to the flat store. Mutually
	// exclusive with RecallTarget.
	Probes int
	// RecallTarget enables adaptive probe serving instead of a static
	// Probes knob: the store shadows a ShadowRate fraction of live
	// retrievals with an exact fan-out off the hot path, measures observed
	// recall@K, and grows/shrinks the effective probe count to hold this
	// target (e.g. 0.95) — so one deployment config serves head and tail
	// queries without hand-tuning. Requires Shards > 1 with Partitioner
	// PartitionIVF. 0 disables.
	RecallTarget float64
	// ShadowRate is the fraction of live retrievals shadowed for the
	// recall SLO, in (0, 1]; 0 defaults to 0.05. Only meaningful with
	// RecallTarget.
	ShadowRate float64
	// RetrainSkew, when >= 1, retrains the IVF quantizer automatically
	// (online, rate-limited) once per-shard imbalance or centroid drift
	// reaches this ratio — so a corpus that grows and drifts as incidents
	// stream in keeps balanced partitions without anyone scheduling
	// retrains. Requires Shards > 1 with Partitioner PartitionIVF. 0
	// disables.
	RetrainSkew float64
	// Quantized enables the two-stage quantized probe scan: probe-limited
	// retrievals walk a per-shard int8 sidecar to collect K×Overfetch
	// candidates, then re-rank exactly against the full-precision vectors —
	// a ~8× smaller scan footprint per probed shard with the final ranking
	// still computed at full precision. Requires probe-limited serving
	// (Probes > 0 or RecallTarget > 0, with Shards > 1 and Partitioner
	// PartitionIVF); exact fan-out never touches the sidecar.
	Quantized bool
	// Overfetch scales the stage-one candidate pool: each probed shard
	// contributes its K×Overfetch best quantized candidates to the exact
	// re-rank. 0 defaults to vectordb.DefaultOverfetch (4). Only meaningful
	// with Quantized.
	Overfetch int
	// AsyncLearnQueue, when positive, moves feedback-loop learning off the
	// hot path: Feedback() verdicts enqueue onto a background ingest
	// worker with this queue capacity instead of re-summarizing inline.
	// Call Feedback().Flush() for read-your-writes before querying. 0
	// keeps the synchronous default.
	AsyncLearnQueue int
	// BatchMax, when >= 2, inserts a micro-batching collector in front of
	// the vector store: concurrent Retrieve calls coalesce into one
	// scan-once-per-shard batched execution of up to BatchMax queries,
	// amortizing each shard's memory walk across the batch. Results stay
	// bit-identical to unbatched serving, and a query arriving on an idle
	// collector is served immediately (no added latency when there is
	// nothing to coalesce with). 0 or 1 disables batching.
	BatchMax int
	// BatchWait bounds how long the collector holds an under-filled batch
	// open waiting for companions before flushing it. 0 defaults to 500µs.
	// Only meaningful with BatchMax >= 2.
	BatchWait time.Duration
	// WALDir enables the durable vector store: TrainEmbedding opens a
	// write-ahead-logged store rooted at this directory, replaying any
	// previous snapshot + log, so a SIGKILL'd deployment reboots with its
	// learned history, trained quantizer, converged probe budgets, and
	// feedback retry schedule intact. Train the embedding from the same
	// corpus with the same Seed on every boot — the logged vectors belong
	// to that embedding space. Empty (the default) keeps the in-memory
	// store.
	WALDir string
	// WALSyncEvery is the WAL group-commit size boundary (0 defaults to
	// 64; 1 fsyncs every learned entry). Requires WALDir.
	WALSyncEvery int
	// WALSyncInterval is the WAL group-commit flush cadence for
	// under-filled batches (0 defaults to 50ms). Requires WALDir.
	WALSyncInterval time.Duration
	// WALCompactBytes is the log size that triggers snapshot compaction
	// and log rotation (0 defaults to 4 MiB; negative disables automatic
	// compaction). Requires WALDir.
	WALCompactBytes int64
}

// System is an assembled RCACopilot deployment over a fleet.
type System struct {
	fleet    *Fleet
	copilot  *core.Copilot
	cfg      Config
	loopOnce sync.Once
	loop     *feedback.Loop
}

// NewFleet builds a default simulated Transport fleet.
func NewFleet(seed int64) *Fleet {
	return transport.NewFleet(transport.DefaultConfig(seed))
}

// NewSystem assembles RCACopilot over the fleet.
func NewSystem(fleet *Fleet, cfg Config) (*System, error) {
	if fleet == nil {
		return nil, fmt.Errorf("rcacopilot: fleet is required")
	}
	chat := cfg.Chat
	if chat == nil {
		model := cfg.Model
		if model == "" {
			model = ModelGPT4
		}
		var err error
		chat, err = simgpt.New(model, simgpt.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
	}
	cop, err := core.New(fleet, chat, core.Config{
		Team:            cfg.Team,
		MultiTenant:     cfg.MultiTenant,
		K:               cfg.K,
		Alpha:           cfg.Alpha,
		Context:         cfg.Context,
		Shards:          cfg.Shards,
		Partitioner:     cfg.Partitioner,
		Probes:          cfg.Probes,
		RecallTarget:    cfg.RecallTarget,
		ShadowRate:      cfg.ShadowRate,
		RetrainSkew:     cfg.RetrainSkew,
		Quantized:       cfg.Quantized,
		Overfetch:       cfg.Overfetch,
		BatchMax:        cfg.BatchMax,
		BatchWait:       cfg.BatchWait,
		WALDir:          cfg.WALDir,
		WALSyncEvery:    cfg.WALSyncEvery,
		WALSyncInterval: cfg.WALSyncInterval,
		WALCompactBytes: cfg.WALCompactBytes,
	})
	if err != nil {
		return nil, err
	}
	return &System{fleet: fleet, copilot: cop, cfg: cfg}, nil
}

// Fleet returns the fleet under diagnosis.
func (s *System) Fleet() *Fleet { return s.fleet }

// Copilot exposes the underlying pipeline for advanced use (ablations,
// custom embedders, handler administration).
func (s *System) Copilot() *core.Copilot { return s.copilot }

// TrainEmbedding trains the FastText retrieval embedding on the diagnostic
// text of historical incidents (§4.2.1: "we opt to train a FastText model
// on our historical incidents") and attaches it, resetting the vector DB:
// any previously learned history is discarded (vectors from different
// embedders are not comparable) and must be re-added with AddHistory.
// Callers needing the dropped-entry count use Copilot().SetEmbedder
// directly.
func (s *System) TrainEmbedding(history []*Incident) error {
	if len(history) == 0 {
		return fmt.Errorf("rcacopilot: no history to train the embedding on")
	}
	texts := make([]string, 0, len(history))
	for _, in := range history {
		texts = append(texts, in.DiagnosticText())
	}
	cfg := s.cfg.Embedding
	if cfg.Seed == 0 {
		cfg.Seed = s.cfg.Seed
	}
	model, err := fasttext.TrainSkipgram(texts, cfg)
	if err != nil {
		return err
	}
	_, err = s.copilot.SetEmbedder(core.FastTextEmbedder{Model: model})
	return err
}

// UseGPTEmbedding swaps the retriever to the chat model's embedding
// endpoint — the paper's "GPT-4 Embed." baseline variant. Like
// TrainEmbedding, swapping resets the vector DB; re-add the history
// afterwards. The returned error is non-nil only with Config.WALDir set,
// when reopening the durable store fails.
func (s *System) UseGPTEmbedding(dim int) error {
	if dim <= 0 {
		dim = 64
	}
	_, err := s.copilot.SetEmbedder(core.LLMEmbedder{Client: s.copilot.Chat(), EmbedDim: dim})
	return err
}

// AddHistory inserts labelled historical incidents into the vector DB,
// summarizing any that lack summaries on the shared worker pool. Incidents
// are cloned; callers' copies are not mutated. The resulting store is
// identical to learning the incidents one at a time in order. Under
// Config{Partitioner: PartitionIVF} the coarse quantizer retrains from the
// stored vectors after the batch lands, rebalancing the shards.
func (s *System) AddHistory(history []*Incident) error {
	clones := make([]*Incident, len(history))
	for i, in := range history {
		clones[i] = in.Clone()
	}
	return s.copilot.LearnBatch(clones, 0)
}

// Outcome is the result of handling one incident end to end.
type Outcome struct {
	// Report describes the collection-stage handler execution.
	Report *RunReport
	// Prediction is the parsed root-cause prediction.
	Prediction Prediction
	// Summary is the LLM-generated diagnostic summary.
	Summary string
}

// HandleIncident runs the full pipeline: collect, summarize, predict. The
// incident is enriched in place (Evidence, ActionOutput, Summary,
// Predicted, Explanation). Safe to call concurrently, each call on its own
// incident.
func (s *System) HandleIncident(inc *Incident) (*Outcome, error) {
	report, res, err := s.copilot.HandleIncident(inc)
	if err != nil {
		return nil, err
	}
	return &Outcome{Report: report, Prediction: res, Summary: inc.Summary}, nil
}

// HandleIncidents runs the full pipeline over a batch of incidents on a
// bounded worker pool: workers <= 0 uses one worker per CPU, workers == 1
// degrades to a sequential loop. Outcomes are index-aligned with incs, and
// each incident's outcome is identical to what HandleIncident would have
// produced for it sequentially (see the package comment's determinism
// contract). On error the lowest-index error is returned and remaining
// incidents are skipped best-effort; incidents already processed keep their
// in-place enrichment.
func (s *System) HandleIncidents(incs []*Incident, workers int) ([]*Outcome, error) {
	return parallel.Map(len(incs), workers, func(i int) (*Outcome, error) {
		return s.HandleIncident(incs[i])
	})
}

// Collect runs only the collection stage.
func (s *System) Collect(inc *Incident) (*RunReport, error) { return s.copilot.Collect(inc) }

// Summarize runs only the summarization step.
func (s *System) Summarize(inc *Incident) error { return s.copilot.Summarize(inc) }

// Predict runs only the prediction stage (the incident must already carry
// diagnostics).
func (s *System) Predict(inc *Incident) (Prediction, error) { return s.copilot.Predict(inc) }

// Learn adds one labelled incident to the history.
func (s *System) Learn(inc *Incident) error { return s.copilot.Learn(inc.Clone()) }

// Feedback returns the system's OCE feedback loop: confirmed and corrected
// predictions are learned back into the incident history, so the system
// improves from review (§5.5's notification-email feedback mechanism).
// Safe to call concurrently; every caller sees the same loop. With
// Config.AsyncLearnQueue > 0 the loop's learning runs on a background
// ingest worker — see FeedbackLoop.Flush for the read-your-writes barrier.
func (s *System) Feedback() *FeedbackLoop {
	s.loopOnce.Do(func() {
		s.loop = feedback.New(nil, s.copilot)
		if d := s.copilot.Durable(); d != nil {
			// Durable deployment (Config.WALDir): the retry schedule rides
			// the vector store's WAL as opaque sidecar records. Restore the
			// schedule the crashed process owed first, then journal every
			// transition from here on, and let compaction re-log the live
			// schedule into each freshly rotated log. Note the loop is built
			// lazily — with WALDir set, call Feedback() after TrainEmbedding
			// so the durable store (and its replayed records) exists.
			var ts []feedback.RetryTransition
			for _, p := range d.RetryRecords() {
				t, err := feedback.DecodeRetryTransition(p)
				if err != nil {
					// The frame checksum verified, so this is a schema drift
					// across versions, not crash damage; dropping one
					// schedule entry only costs a redrive until resubmit.
					continue
				}
				ts = append(ts, t)
			}
			s.loop.RestoreRetrySchedule(ts)
			s.loop.SetRetryJournal(func(t feedback.RetryTransition) {
				if p, err := t.Encode(); err == nil {
					// A sticky log error surfaces through the durable
					// store's Stats; the in-memory schedule keeps working.
					_ = d.AppendRetry(p)
				}
			})
			d.SetRetrySnapshot(func() [][]byte {
				var out [][]byte
				for _, t := range s.loop.RetryTransitions() {
					if p, err := t.Encode(); err == nil {
						out = append(out, p)
					}
				}
				return out
			})
		}
		if s.cfg.AsyncLearnQueue > 0 {
			// Start cannot fail here: the learner is non-nil and the loop
			// is freshly built.
			_ = s.loop.StartIngest(s.cfg.AsyncLearnQueue)
		}
	})
	return s.loop
}

// Retrieve embeds free text and returns the k nearest historical
// incidents under temporal-decay similarity anchored at the fleet's
// current virtual time — the read API behind the serving daemon's
// /api/retrieve endpoint. diverse applies the category-diversity
// constraint Predict uses for its demonstrations; k <= 0 uses the
// configured K.
func (s *System) Retrieve(text string, k int, diverse bool) ([]Retrieved, error) {
	return s.copilot.Retrieve(text, s.fleet.Clock().Now(), k, diverse)
}

// RetrieveTeam is Retrieve through one team's namespace view: only that
// tenant's learned history is searched (the read behind the daemon's
// /api/retrieve?team= parameter). An unknown team returns zero hits
// without error.
func (s *System) RetrieveTeam(team, text string, k int, diverse bool) ([]Retrieved, error) {
	return s.copilot.RetrieveIn(team, text, s.fleet.Clock().Now(), k, diverse)
}

// Close releases background serving resources — today the micro-batching
// collector's dispatcher (Config.BatchMax). The system keeps serving
// after Close (retrievals just bypass the collector), so it is safe to
// call during shutdown while drains finish. The feedback loop has its own
// lifecycle — see FeedbackLoop.Close.
func (s *System) Close() { s.copilot.Close() }

// RenderRetryQueue renders the feedback loop's learn-failure self-heal
// schedule — per-incident attempt counts and next redrive times — next to
// which a dashboard shows the Failures list. The rendering is anchored at
// the wall clock the retry queue itself runs on.
func (s *System) RenderRetryQueue(opts ReportOptions) string {
	return report.RenderRetryQueue(time.Now(), s.Feedback().RetrySchedule(), opts)
}

// RenderReport produces the plain-text incident notification for a handled
// incident: alert, collection trail, summary, prediction, mitigations and
// feedback instructions.
func (s *System) RenderReport(inc *Incident, rep *RunReport, opts ReportOptions) string {
	return report.Render(inc, rep, opts)
}

// RenderLearnFailure produces the plain-text notification for a failed
// background learn, addressed to the OCE whose verdict could not be fed
// back into the incident history. Wire it to the feedback loop's
// notification hook to close the async error path:
//
//	sys.Feedback().SetNotifier(func(f rcacopilot.LearnFailure) {
//		deliver(f.Reviewer, sys.RenderLearnFailure(f, rcacopilot.ReportOptions{}))
//	})
//
// Failures also stay queryable on the loop (Failures/FailureFor) until
// the incident learns successfully, so a dashboard can show unresolved
// learn debt without any Flush.
func (s *System) RenderLearnFailure(f LearnFailure, opts ReportOptions) string {
	return report.RenderLearnFailure(f.IncidentID, f.Reviewer, f.Err, f.At, opts)
}

// GenerateCorpus builds the paper-faithful 653-incident synthetic year
// (Table 1 categories at their published occurrence counts, 163 categories,
// 93.8% of recurrences within 20 days).
func GenerateCorpus(seed int64) (*Corpus, error) {
	return dataset.Generate(dataset.DefaultSpec(seed))
}

// GenerateCorpusSpec builds a corpus from a custom specification.
func GenerateCorpusSpec(spec CorpusSpec) (*Corpus, error) { return dataset.Generate(spec) }
